"""Command-line interface: the ``mixpbench`` entry point.

Subcommands::

    mixpbench list                         # suite inventory
    mixpbench analyze BENCH                # Typeforge TV/TC report
    mixpbench lint [TARGET...]             # static precision diagnostics
    mixpbench certify BENCH                # static error-bound certificate
    mixpbench run CONFIG.yaml              # run a YAML harness file
    mixpbench search BENCH --algorithm DD  # one ad-hoc search
    mixpbench sensitivity BENCH            # shadow-run error attribution
    mixpbench serve --state-dir DIR        # run the search service daemon
    mixpbench submit --programs ...        # queue a grid on the service
    mixpbench status [JOB]                 # inspect the service ledger
    mixpbench attach JOB                   # follow a job to completion
    mixpbench cancel JOB                   # ask the daemon to cancel a job
"""

from __future__ import annotations

import argparse
import sys

from repro.benchmarks.base import (
    application_benchmarks, get_benchmark, kernel_benchmarks,
)
from repro.core.batch import EXECUTOR_NAMES, make_executor
from repro.core.evaluator import ConfigurationEvaluator
from repro.errors import MixPBenchError
from repro.harness.reporting import (
    format_eval_stats, format_prune_stats, format_quality,
    format_screen_stats, format_shadow_stats, format_speedup, format_table,
)
from repro.harness.runner import Harness
from repro.search.registry import (
    available_strategies, make_strategy, strategy_kwargs,
)
from repro.verify.quality import QualitySpec

__all__ = ["main", "build_parser"]


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """Shared batch-execution/caching flags for search-running commands."""
    parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default="serial",
        help="batch backend for configuration evaluation (default: serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the thread/process executors",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent evaluation cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="evaluation cache directory (default: <output>/cache)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="write a JSON-lines telemetry trace next to the results",
    )
    parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock budget; slower trials are reported "
             "as runtime errors (process executor kills hung workers)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry transient worker failures up to N times with "
             "exponential backoff (default: 0, no retries)",
    )
    _add_fuse_flag(parser)


def _add_fuse_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-fuse", action="store_true",
        help="disable the trace-fusion fast path (equivalent to "
             "MIXPBENCH_FUSE=0; results are bit-identical either way)",
    )


def _add_order_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--order", choices=["none", "shadow"], default="none",
        help="search-location ordering: 'shadow' runs one shadow "
             "sensitivity analysis and enumerates locations "
             "most-sensitive-first (default: none)",
    )


def _add_screen_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--screen", action="store_true",
        help="skip configurations whose statically certified error "
             "lower bound already violates the threshold (sound: "
             "screening only skips, never accepts — the verified error "
             "of the result matches the unscreened search)",
    )


def _add_rounding_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rounding", choices=["nearest", "stochastic"], default="nearest",
        help="store-rounding mode for emulated e8m*/e11m* formats "
             "(consumed by the BW bit-width bisection strategy; "
             "default: nearest, i.e. round-to-nearest-even)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mixpbench",
        description="HPC-MixPBench: mixed-precision analysis harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    analyze = sub.add_parser("analyze", help="run the Typeforge analysis on a benchmark")
    analyze.add_argument("benchmark")
    analyze.add_argument(
        "--explain", nargs=2, metavar=("VAR_A", "VAR_B"), default=None,
        help="show the dependence chain forcing two variables into one cluster",
    )
    analyze.add_argument(
        "--prune", action="store_true",
        help="also show the statically pruned search space "
             "(frozen variables, merged clusters)",
    )

    lint = sub.add_parser(
        "lint",
        help="static precision diagnostics (MPB rule codes) over "
             "benchmarks, files or directories",
    )
    lint.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="benchmark names, .py files, or directories of benchmark "
             "modules (default: the whole suite)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by '# mpb: ignore[...]' comments",
    )
    lint.add_argument(
        "--fail-on", choices=["error", "warning", "info", "never"],
        default="error",
        help="lowest severity that makes the exit status non-zero "
             "(default: error)",
    )

    certify = sub.add_parser(
        "certify",
        help="static rounding-error certificate: per-variable bound "
             "amplifications, calibrated against one shadow run, and "
             "the screening verdict for the uniform width ladder",
    )
    certify.add_argument("benchmark")
    certify.add_argument(
        "--threshold", type=float, default=None,
        help="error threshold the screening verdicts are judged against "
             "(default: the benchmark's)",
    )
    certify.add_argument(
        "--safety", type=float, default=None,
        help="safety divisor between the calibrated estimate and the "
             "certified lower bound (default: 128)",
    )
    certify.add_argument(
        "--trip-count", type=int, default=None, metavar="N",
        help="bound reduction loops at N iterations instead of the "
             "symbolic default (silences MPB302)",
    )
    certify.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )

    run = sub.add_parser("run", help="run a YAML harness configuration")
    run.add_argument("config")
    run.add_argument("--output-dir", default="results")
    run.add_argument(
        "--prune", action="store_true",
        help="restrict each search space with the static dataflow pruner",
    )
    _add_order_flag(run)
    _add_rounding_flag(run)
    _add_screen_flag(run)
    _add_execution_flags(run)

    search = sub.add_parser("search", help="run one mixed-precision search")
    search.add_argument("benchmark")
    search.add_argument("--algorithm", default="DD", help=f"one of {available_strategies()}")
    search.add_argument("--threshold", type=float, default=None)
    search.add_argument("--metric", default=None)
    search.add_argument("--max-evaluations", type=int, default=None)
    search.add_argument(
        "--timing", choices=["modeled", "wall"], default="modeled",
        help="runtime source: roofline model (default) or host wall clock",
    )
    search.add_argument(
        "--output-dir", default="results",
        help="root directory for cache/trace artifacts",
    )
    search.add_argument(
        "--save", default=None, metavar="PATH",
        help="also save the SearchOutcome as interchange JSON",
    )
    search.add_argument(
        "--prune", action="store_true",
        help="restrict the search space with the static dataflow pruner",
    )
    _add_order_flag(search)
    _add_rounding_flag(search)
    _add_screen_flag(search)
    _add_execution_flags(search)

    grid = sub.add_parser(
        "grid",
        help="run a (program x algorithm x threshold) grid, "
             "journaled and resumable after a crash",
    )
    grid.add_argument("--programs", nargs="+", required=True, metavar="BENCH")
    grid.add_argument(
        "--algorithms", nargs="+", required=True, metavar="ALGO",
        help=f"one or more of {available_strategies()}",
    )
    grid.add_argument("--thresholds", nargs="+", type=float, required=True)
    grid.add_argument(
        "--grid-workers", type=int, default=1,
        help="inter-job parallelism (jobs run concurrently on threads)",
    )
    grid.add_argument("--max-evaluations", type=int, default=None)
    grid.add_argument("--time-limit-hours", type=float, default=24.0)
    grid.add_argument(
        "--run-id", default=None,
        help="journal the run under <output>/runs/<run-id>/ so it can "
             "be resumed after a crash",
    )
    grid.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume a journaled run: skip finished jobs, replay "
             "completed trials, continue from the cut point",
    )
    grid.add_argument(
        "--prune", action="store_true",
        help="restrict every job's search space with the static dataflow pruner",
    )
    _add_order_flag(grid)
    _add_rounding_flag(grid)
    _add_screen_flag(grid)
    grid.add_argument("--output-dir", default="results")
    _add_execution_flags(grid)

    sensitivity = sub.add_parser(
        "sensitivity",
        help="shadow-run sensitivity analysis: per-variable error "
             "attribution plus a verified recommended configuration",
    )
    sensitivity.add_argument("benchmark")
    sensitivity.add_argument("--threshold", type=float, default=None)
    sensitivity.add_argument("--metric", default=None)
    sensitivity.add_argument(
        "--half", action="store_true",
        help="also propagate fp16 shadows (fp32 is always on)",
    )
    sensitivity.add_argument(
        "--replica", action="append", default=None, metavar="FORMAT",
        help="extra shadow replica precision, e.g. an emulated format "
             "like e8m10 (repeatable; see docs/precision-formats.md)",
    )
    sensitivity.add_argument(
        "--no-recommend", action="store_true",
        help="report attribution only; skip the predict-and-verify step",
    )
    sensitivity.add_argument(
        "--save", default=None, metavar="PATH",
        help="also save the SensitivityReport as JSON",
    )
    _add_fuse_flag(sensitivity)

    profile = sub.add_parser(
        "profile", help="machine-model runtime breakdown of a benchmark",
    )
    profile.add_argument("benchmark")
    profile.add_argument(
        "--precision", default="double",
        help="uniform precision to profile (double/single/half)",
    )

    def _add_state_dir(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--state-dir", default="service",
            help="service state directory (ledger, shared cache, spool; "
                 "default: ./service)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the search service daemon: accept grid submissions "
             "from many tenants, dedupe through one shared cache",
    )
    _add_state_dir(serve)
    serve.add_argument(
        "--service-workers", type=int, default=2, metavar="N",
        help="worker threads draining the shard queue (default: 2)",
    )
    serve.add_argument(
        "--quota", type=int, default=8, metavar="N",
        help="per-tenant ceiling on active (queued+running) jobs (default: 8)",
    )
    serve.add_argument(
        "--shard-retries", type=int, default=2, metavar="N",
        help="redispatch a crashed shard up to N times (default: 2)",
    )
    serve.add_argument(
        "--poll-seconds", type=float, default=0.1, metavar="SECONDS",
        help="spool polling interval (default: 0.1)",
    )
    serve.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long with no active jobs and an empty "
             "spool (default: serve until <state-dir>/stop appears)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a (program x algorithm x threshold) grid to a "
             "running `mixpbench serve` daemon",
    )
    _add_state_dir(submit)
    submit.add_argument("--programs", nargs="+", required=True, metavar="BENCH")
    submit.add_argument(
        "--algorithms", nargs="+", required=True, metavar="ALGO",
        help=f"one or more of {available_strategies()}",
    )
    submit.add_argument("--thresholds", nargs="+", type=float, required=True)
    submit.add_argument("--max-evaluations", type=int, default=None)
    submit.add_argument("--time-limit-hours", type=float, default=24.0)
    submit.add_argument(
        "--tenant", default="default",
        help="tenant the job is accounted against (default: default)",
    )
    submit.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default="serial",
        help="batch backend each shard evaluates with (default: serial)",
    )
    submit.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the thread/process executors",
    )
    submit.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock budget inside each shard",
    )
    submit.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry transient worker failures up to N times",
    )
    submit.add_argument(
        "--prune", action="store_true",
        help="restrict every shard's search space with the static pruner",
    )
    _add_order_flag(submit)
    _add_rounding_flag(submit)
    _add_screen_flag(submit)
    _add_fuse_flag(submit)
    submit.add_argument(
        "--ack-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait for the daemon to acknowledge (default: 30)",
    )
    submit.add_argument(
        "--attach", action="store_true",
        help="stay attached: stream progress and exit with the job's outcome",
    )

    status = sub.add_parser(
        "status",
        help="inspect the service ledger (read-only; daemon not required)",
    )
    status.add_argument("job_id", nargs="?", default=None)
    _add_state_dir(status)
    status.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )

    attach = sub.add_parser(
        "attach",
        help="follow a submitted job: stream progress, exit with its "
             "outcome (0 done, 1 failed, 3 cancelled)",
    )
    attach.add_argument("job_id")
    _add_state_dir(attach)
    attach.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up (exit 2) if the job is still live after this long",
    )
    attach.add_argument(
        "--save", default=None, metavar="PATH",
        help="also copy the job's results.json (the same payload "
             "`mixpbench grid` writes) to PATH",
    )

    cancel = sub.add_parser(
        "cancel", help="ask the serving daemon to cancel a job",
    )
    cancel.add_argument("job_id")
    _add_state_dir(cancel)

    report = sub.add_parser(
        "report", help="analyse saved search outcomes (interchange JSON)",
    )
    report.add_argument(
        "outcomes", nargs="+",
        help="outcome JSON files (e.g. results/searches/*.json)",
    )
    report.add_argument(
        "--convergence", action="store_true",
        help="also print each outcome's best-speedup-so-far curve",
    )
    return parser


def _cmd_list() -> int:
    rows = []
    for name in kernel_benchmarks():
        rows.append([name, "kernel", get_benchmark(name).description])
    for name in application_benchmarks():
        rows.append([name, "application", get_benchmark(name).description])
    print(format_table(["name", "category", "description"], rows, "HPC-MixPBench suite"))
    return 0


def _cmd_analyze(
    name: str, explain: list[str] | None = None, prune: bool = False
) -> int:
    bench = get_benchmark(name)
    report = bench.report()
    if explain is not None:
        uid_a, uid_b = explain
        chain = report.explain(uid_a, uid_b)
        if chain is None:
            print(f"{uid_a} and {uid_b} are type-independent "
                  "(changing one never forces the other)")
        elif not chain:
            print(f"{uid_a} and {uid_b} are the same entity")
        else:
            print(f"{uid_a} must share a base type with {uid_b} because:")
            for step in chain:
                print(f"  {step}")
        return 0
    print(f"{bench.name}: TV={report.total_variables} TC={report.total_clusters}")
    rows = [[c.cid, len(c), ", ".join(sorted(c.members))] for c in report.clusters]
    print(format_table(["cluster", "size", "members"], rows))
    if prune:
        from repro.typeforge.prune import prune_report

        pruned = prune_report(report)
        stats = pruned.stats(report.search_space())
        print(f"\nwith --prune: {pruned.describe(report.search_space())}")
        for uid in stats["frozen"]:
            print(f"  frozen : {uid}")
        for merged in stats["merged"]:
            print(f"  merged : {merged}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.typeforge.lint import (
        SEVERITIES, format_text, reports_to_json, resolve_targets,
    )

    reports = resolve_targets(list(args.targets))
    if args.format == "json":
        print(json.dumps(reports_to_json(reports), indent=2, sort_keys=True))
    else:
        print(format_text(reports, show_suppressed=args.show_suppressed))
    if args.fail_on == "never":
        return 0
    threshold = SEVERITIES.index(args.fail_on)
    for report in reports:
        worst = report.worst_severity()
        if worst is not None and SEVERITIES.index(worst) <= threshold:
            return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    harness = Harness(
        output_dir=args.output_dir,
        executor=args.executor,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        trace=args.trace,
        trial_timeout=args.trial_timeout,
        max_retries=args.max_retries,
        prune=args.prune,
        shadow=args.order == "shadow",
        fuse=not args.no_fuse,
        rounding=args.rounding,
        screen=args.screen,
    )
    for report in harness.run_file(args.config):
        print(f"\n{report.name} ({report.metric} <= {report.threshold:g})")
        rows = []
        pruned = False
        shadowed = False
        screened = False
        for a in report.analyses:
            pruned = pruned or bool(a.prune)
            shadowed = shadowed or bool(a.shadow)
            screened = screened or bool(a.screen)
            rows.append([
                a.identifier, a.strategy, a.evaluations,
                f"{a.analysis_hours:.2f}h",
                "timeout" if a.timed_out else ("ok" if a.found_solution else "none"),
                format_speedup(a.speedup), format_quality(a.error_value),
                format_eval_stats(a.eval_stats),
            ])
        print(format_table(
            ["analysis", "strategy", "EV", "time", "status", "SU", "AC",
             "evaluation"], rows,
        ))
        if pruned:
            for a in report.analyses:
                if a.prune:
                    print(f"  {a.identifier}: pruned {format_prune_stats(a.prune)}")
        if shadowed:
            for a in report.analyses:
                if a.shadow:
                    print(f"  {a.identifier}: shadow {format_shadow_stats(a.shadow)}")
        if screened:
            for a in report.analyses:
                if a.screen:
                    print(f"  {a.identifier}: screen {format_screen_stats(a.screen)}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    import json

    from repro.typeforge.errorbound import DEFAULT_SAFETY, certify_benchmark

    bench = get_benchmark(args.benchmark)
    threshold = args.threshold if args.threshold is not None else bench.default_threshold
    safety = args.safety if args.safety is not None else DEFAULT_SAFETY
    model, certificate = certify_benchmark(
        bench, safety=safety, trip_count=args.trip_count,
    )

    # Price the uniform width ladder: for each representative width,
    # the certified lower bound of lowering every weighted location.
    from repro.core.types import PrecisionConfig, get_format

    ladder = []
    for mantissa in (23, 16, 10, 6, 2):
        fmt = get_format(f"e8m{mantissa}")
        config = PrecisionConfig(dict.fromkeys(certificate.weights, fmt))
        ladder.append({
            "format": fmt.name,
            "lower_bound": certificate.lower(config),
            "screened": certificate.rejects(config, threshold),
        })

    if args.format == "json":
        payload = {
            "program": bench.name,
            "threshold": threshold,
            "model": model.to_json_dict(),
            "certificate": certificate.to_json_dict(),
            "uniform_ladder": ladder,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    summary = model.summary()
    print(f"{bench.name}: static error-bound certificate "
          f"({bench.metric} <= {threshold:g})")
    trips = (f"{model.trip_count} (trace-bounded)" if model.trip_bounded
             else f"{model.trip_count} (assumed; no recorded trace)")
    print(f"  reduction trip count : {trips}")
    print(f"  amplification terms  : {summary['terms']}")
    dom = summary["dominating"]
    if dom:
        print(f"  dominating variable  : {dom[0]} (x{dom[1]:g})")
    anchor = certificate.anchor
    anchor_text = f"{anchor:.3e}" if isinstance(anchor, float) else str(anchor)
    print(f"  calibration anchor   : uniform-fp32 {bench.metric} = {anchor_text} "
          f"(safety {certificate.safety:g})")
    if certificate.weights:
        rows = [
            [uid, f"{weight:.3e}", f"{model.amplification(uid):g}"]
            for uid, weight in sorted(
                certificate.weights.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        print(format_table(
            ["variable", "weight (metric units @ fp32)", "amplification"], rows,
        ))
        rows = [
            [step["format"], f"{step['lower_bound']:.3e}",
             "screened" if step["screened"] else "evaluate"]
            for step in ladder
        ]
        print(format_table(["uniform width", "certified lower bound", "verdict"], rows))
    else:
        print("  certificate is inert (no measured anchor); screening will "
              "never reject")
    if model.sites:
        print("  bound sites:")
        for site in model.sites:
            print(f"    {site.location()}: {site.rule}: {site.message}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.evaluator import TimingMode
    from repro.core.telemetry import TraceWriter
    from repro.runtime.cache import EvaluationCache

    bench = get_benchmark(args.benchmark)
    threshold = args.threshold if args.threshold is not None else bench.default_threshold
    quality = QualitySpec(args.metric or bench.metric, threshold)
    timing = TimingMode.WALL_CLOCK if args.timing == "wall" else TimingMode.MODELED
    output_dir = Path(args.output_dir)
    executor = make_executor(
        args.executor, args.workers,
        trial_timeout=args.trial_timeout, max_retries=args.max_retries,
    )
    cache = None
    if not args.no_cache:
        cache = EvaluationCache(args.cache_dir or output_dir / "cache")
    trace = None
    if args.trace:
        trace = TraceWriter(
            output_dir / "traces" / f"{bench.name}-{args.algorithm}.jsonl"
        )
    space_override = None
    prune_info = None
    if args.prune:
        from repro.typeforge.prune import prune_report

        tf_report = bench.report()
        pruned = prune_report(tf_report)
        space_override = pruned.space
        prune_info = pruned.stats(tf_report.search_space())
    location_order = None
    shadow_info = None
    if args.order == "shadow":
        from repro.shadow import shadow_guidance

        location_order, shadow_info = shadow_guidance(bench)
    screen = None
    screen_info = None
    if args.screen:
        from repro.typeforge.errorbound import certify_benchmark

        _, screen = certify_benchmark(bench)
        screen_info = screen.info()
    try:
        evaluator = ConfigurationEvaluator(
            bench, quality=quality, max_evaluations=args.max_evaluations,
            timing=timing, executor=executor, cache=cache, trace=trace,
            space_override=space_override, prune_info=prune_info,
            location_order=location_order, shadow_info=shadow_info,
            screen=screen, screen_info=screen_info,
        )
        strategy = make_strategy(
            args.algorithm,
            **strategy_kwargs(args.algorithm, rounding=args.rounding),
        )
        outcome = strategy.run(evaluator)
    finally:
        executor.close()
        if trace is not None:
            trace.close()
    status = "timeout" if outcome.timed_out else ("ok" if outcome.found_solution else "none")
    print(f"{bench.name} / {outcome.strategy} @ {threshold:g}: {status}")
    print(f"  evaluated configurations: {outcome.evaluations}")
    print(f"  analysis time: {outcome.analysis_seconds / 3600.0:.2f} simulated hours")
    stats = outcome.metadata.get("eval_stats") or {}
    print(f"  evaluation: {format_eval_stats(stats)}")
    # Fusion counters live outside the interchange eval_stats payload
    # (they describe this host's execution, not the search result),
    # so report them from the live evaluator instead.
    fusion = evaluator.stats.fusion_summary()
    if fusion:
        print("  fusion: " + ", ".join(f"{k} {v}" for k, v in fusion.items()))
    if prune_info is not None:
        print(f"  pruned: {format_prune_stats(prune_info)}")
    if shadow_info is not None:
        print(f"  shadow: {format_shadow_stats(shadow_info)}")
    if screen_info is not None:
        print(f"  screen: {format_screen_stats(outcome.metadata.get('screen'))}")
    if outcome.found_solution:
        print(f"  speedup: {format_speedup(outcome.speedup)}")
        print(f"  quality: {format_quality(outcome.error_value)}")
        lowered = sorted(outcome.final.config.lowered_locations())
        print(f"  lowered variables ({len(lowered)}): {', '.join(lowered)}")
    if args.save:
        outcome.save(args.save)
        print(f"  outcome saved to {args.save}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.harness.scheduler import grid_jobs, run_grid

    output_dir = Path(args.output_dir)
    run_id = args.run_id or args.resume
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(output_dir / "cache")
    jobs = grid_jobs(
        args.programs, args.algorithms, args.thresholds,
        time_limit_seconds=args.time_limit_hours * 3600.0,
        max_evaluations=args.max_evaluations,
        executor=args.executor,
        executor_workers=args.workers,
        cache_dir=cache_dir,
        trial_timeout=args.trial_timeout,
        max_retries=args.max_retries,
        prune=args.prune,
        shadow=args.order == "shadow",
        fuse=not args.no_fuse,
        rounding=args.rounding,
        screen=args.screen,
    )
    results = run_grid(
        jobs, workers=args.grid_workers,
        run_id=run_id, resume=args.resume,
        runs_dir=output_dir / "runs",
    )

    rows = []
    for result in results:
        outcome = result.outcome
        if outcome is not None:
            status = "timeout" if outcome.timed_out else (
                "ok" if outcome.found_solution else "none"
            )
            rows.append([
                result.job.label(),
                "resumed" if result.resumed else "ran",
                outcome.evaluations,
                f"{outcome.analysis_seconds / 3600.0:.2f}h",
                status,
                format_speedup(outcome.speedup),
                format_quality(outcome.error_value),
            ])
        else:
            rows.append([
                result.job.label(),
                "resumed" if result.resumed else "ran",
                "-", "-", f"error: {result.error_kind or 'unknown'}", "-", "-",
            ])
    print(format_table(
        ["job", "source", "EV", "time", "status", "SU", "AC"], rows,
        f"grid ({len(results)} jobs)",
    ))
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"\n{len(failed)} job(s) failed:")
        for result in failed:
            print(f"  {result.job.label()}: {result.error_kind}")

    if run_id is not None:
        results_path = output_dir / "runs" / run_id / "results.json"
        results_path.parent.mkdir(parents=True, exist_ok=True)
        results_path.write_text(json.dumps(
            [r.to_json_dict() for r in results], indent=2, sort_keys=True,
        ))
        print(f"\nresults saved to {results_path}")
    return 1 if failed else 0


def _submit_spec(args: argparse.Namespace):
    from repro.service import GridSpec

    return GridSpec(
        programs=tuple(args.programs),
        algorithms=tuple(args.algorithms),
        thresholds=tuple(args.thresholds),
        max_evaluations=args.max_evaluations,
        time_limit_seconds=args.time_limit_hours * 3600.0,
        executor=args.executor,
        executor_workers=args.workers,
        trial_timeout=args.trial_timeout,
        max_retries=args.max_retries,
        prune=args.prune,
        shadow=args.order == "shadow",
        fuse=not args.no_fuse,
        rounding=args.rounding,
        screen=args.screen,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import Scheduler

    scheduler = Scheduler(
        args.state_dir,
        workers=args.service_workers,
        quota=args.quota,
        shard_retries=args.shard_retries,
    )
    print(f"serving {scheduler.paths['root']} "
          f"({scheduler.workers} workers, quota {scheduler.quota}/tenant; "
          f"touch {scheduler.paths['root'] / 'stop'} to drain and exit)")
    scheduler.serve(
        poll_seconds=args.poll_seconds,
        idle_exit_seconds=args.idle_exit,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import submit_request

    spec = _submit_spec(args)
    job_id = submit_request(
        args.state_dir, spec, tenant=args.tenant, timeout=args.ack_timeout,
    )
    print(f"submitted {job_id}: {spec.label()} (tenant {args.tenant})")
    if not args.attach:
        print(f"follow with: mixpbench attach {job_id} "
              f"--state-dir {args.state_dir}")
        return 0
    return _follow(args.state_dir, job_id, timeout=None, save=None)


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.service import job_status, service_status

    if args.job_id is not None:
        payload = job_status(args.state_dir, args.job_id)
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"{payload['job_id']}  {payload['state']:9s}  "
              f"tenant {payload['tenant']}  {payload['label']}")
        print(f"  shards: {payload['shards_finished']}/{payload['shards']}")
        if payload["error"]:
            print(f"  error : {payload['error']}")
        stats = payload["stats"]
        if stats:
            print(f"  stats : EV {stats.get('evaluations', 0)}, "
                  f"fresh {stats.get('fresh_evaluations', 0)}, "
                  f"shared-cache hits {stats.get('persistent_hits', 0)}, "
                  f"redispatched {stats.get('redispatched_shards', 0)}")
        return 0

    snapshot = service_status(args.state_dir)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    pid = snapshot["serving_pid"]
    print(f"daemon: {'pid %d' % pid if pid else 'not running'}")
    rows = [
        [job["job_id"], job["tenant"], job["state"],
         f"{job['shards_finished']}/{job['shards']}", job["label"]]
        for job in snapshot["jobs"]
    ]
    if rows:
        print(format_table(
            ["job", "tenant", "state", "shards", "grid"], rows,
            f"service ledger ({len(rows)} jobs)",
        ))
    else:
        print("no jobs submitted yet")
    return 0


def _follow(
    state_dir: str, job_id: str, timeout: float | None, save: str | None
) -> int:
    import shutil

    from repro.service import ATTACH_EXIT_CODES, attach, results_path

    state = attach(
        state_dir, job_id,
        stream=lambda line: print(f"  {line}"),
        timeout=timeout,
    )
    print(f"{job_id}: {state}")
    if save is not None and state == "done":
        source = results_path(state_dir, job_id)
        shutil.copyfile(source, save)
        print(f"results saved to {save}")
    return ATTACH_EXIT_CODES.get(state, 2)


def _cmd_attach(args: argparse.Namespace) -> int:
    return _follow(args.state_dir, args.job_id, args.timeout, args.save)


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import request_cancel

    request_cancel(args.state_dir, args.job_id)
    print(f"cancellation of {args.job_id} requested "
          f"(confirm with: mixpbench status {args.job_id} "
          f"--state-dir {args.state_dir})")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.shadow import recommend_and_verify, run_shadow_analysis

    bench = get_benchmark(args.benchmark)
    report = run_shadow_analysis(
        bench, include_half=args.half, replicas=tuple(args.replica or ()),
    )
    print(report.render())
    if args.save:
        report.save(args.save)
        print(f"report saved to {args.save}")
    if args.no_recommend:
        return 0

    threshold = args.threshold if args.threshold is not None else bench.default_threshold
    quality = QualitySpec(args.metric or bench.metric, threshold)
    evaluator = ConfigurationEvaluator(bench, quality=quality)
    rec = recommend_and_verify(report, evaluator)
    print(f"\nrecommendation for {bench.name} ({quality.metric} <= {threshold:g}):")
    predicted = (
        f"{rec.predicted_error:.3e}" if rec.predicted_error is not None else "n/a"
    )
    print(f"  predicted  : {len(rec.predicted_lowered)} locations lowered, "
          f"{quality.metric} ~ {predicted}")
    verified = (
        f"{rec.verified_error:.3e}" if rec.verified_error is not None else "n/a"
    )
    status = "passed" if rec.passed else "FAILED"
    print(f"  verified   : {quality.metric} = {verified} ({status}, "
          f"{rec.evaluations} evaluation(s) through the standard evaluator)")
    if rec.passed and rec.lowered:
        print(f"  lowered    : {', '.join(rec.lowered)}")
    elif rec.passed:
        print("  lowered    : nothing (uniform double is the recommendation)")
    return 0 if rec.passed else 1


def _cmd_profile(name: str, precision_name: str) -> int:
    from repro.core.types import Precision, PrecisionConfig, parse_precision

    bench = get_benchmark(name)
    precision = parse_precision(precision_name)
    if precision is Precision.DOUBLE:
        config = PrecisionConfig()
    else:
        config = bench.search_space().uniform_config(precision)
    result = bench.execute(config)
    machine = bench.machine
    breakdown = machine.breakdown(result.profile)
    summary = result.profile.summary()

    print(f"{bench.name} @ uniform {precision.value} "
          f"(machine model: {machine.name})")
    print(f"  modeled runtime : {result.modeled_seconds * 1e3:.3f} modeled ms")
    print(f"  working set     : {summary['peak_footprint'] / 2**20:.2f} MiB "
          f"(effective bandwidth {breakdown['bandwidth'] / 1e9:.0f} GB/s)")
    print("  time breakdown:")
    for component in ("compute", "memory", "casts", "gathers", "call_overhead"):
        seconds = breakdown[component]
        share = seconds / result.modeled_seconds if result.modeled_seconds else 0.0
        print(f"    {component:14s}: {seconds * 1e3:9.3f} ms  ({share:5.1%})")
    print("  operation mix (element ops):")
    for bucket, count in summary["ops"].items():
        print(f"    {bucket:18s}: {count:,.0f}")
    print(f"  memory traffic  : {summary['bytes_read'] / 2**20:.1f} MiB read, "
          f"{summary['bytes_written'] / 2**20:.1f} MiB written")
    if summary["io_bytes"]:
        print(f"  file I/O        : {summary['io_bytes'] / 2**20:.2f} MiB")
    return 0


def _cmd_report(paths: list[str], show_convergence: bool) -> int:
    from repro.analysis import (
        convergence_curve, effort_summary, summarize_many,
        time_to_first_solution,
    )
    from repro.core.results import SearchOutcome

    outcomes = [SearchOutcome.load(path) for path in paths]
    problems = {(o.program, o.threshold) for o in outcomes}
    if len(problems) == 1 and len(outcomes) > 1:
        program, threshold = next(iter(problems))
        print(f"{program} @ threshold {threshold:g} — ranked best-first:")
        for line in summarize_many(outcomes):
            print(f"  {line}")
    else:
        for outcome in outcomes:
            print(f"{outcome.program} / {outcome.strategy} "
                  f"@ {outcome.threshold:g}:")
            print(f"  {effort_summary(outcome)}")
            first = time_to_first_solution(outcome)
            if first:
                evaluations, seconds = first
                print(f"  first solution after {evaluations} evaluations "
                      f"({seconds / 3600.0:.2f} simulated hours)")

    if show_convergence:
        for outcome in outcomes:
            print(f"\nconvergence of {outcome.strategy} on {outcome.program}:")
            previous = None
            for point in convergence_curve(outcome):
                if point.best_speedup != previous:
                    print(f"  after {point.evaluations:4d} evaluations: "
                          f"{point.best_speedup:.3f}x")
                    previous = point.best_speedup
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_fuse", False):
        # Process-wide force, so every execution this command performs
        # (searches, shadow runs, verification re-runs) is interpreted.
        from repro.runtime.fuse import set_fusion_enabled

        set_fusion_enabled(False)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "analyze":
            return _cmd_analyze(args.benchmark, args.explain, args.prune)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "certify":
            return _cmd_certify(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "grid":
            return _cmd_grid(args)
        if args.command == "sensitivity":
            return _cmd_sensitivity(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "attach":
            return _cmd_attach(args)
        if args.command == "cancel":
            return _cmd_cancel(args)
        if args.command == "profile":
            return _cmd_profile(args.benchmark, args.precision)
        if args.command == "report":
            return _cmd_report(args.outcomes, args.convergence)
    except MixPBenchError as error:
        # StyleErrors carry file:line:col, rendered by their __str__
        print(f"mixpbench: error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    sys.exit(main())
