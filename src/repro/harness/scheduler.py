"""Parallel scheduling of analysis jobs.

"We use the support of HPC-MixPBench's harness to schedule each
analysis in parallel on a cluster ...  The harness offloads the search
for each combination of an application/algorithm to a separate node
but executes all the final binaries on the same node for consistency"
(paper Section IV).  A SLURM cluster is unavailable here, so the
scheduler fans the (program × algorithm × threshold) grid out over a
local worker pool instead; the *final* verification runs serially
through the Harness on "the same node", preserving the paper's
consistency discipline.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.benchmarks.base import get_benchmark
from repro.core.batch import make_executor
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import SearchOutcome
from repro.runtime.cache import EvaluationCache
from repro.search.registry import canonical_name, make_strategy
from repro.verify.quality import QualitySpec

__all__ = ["SearchJob", "JobResult", "run_grid", "grid_jobs"]

_DEFAULT_TIME_LIMIT = 24 * 3600.0


@dataclass(frozen=True)
class SearchJob:
    """One (program, algorithm, threshold) analysis to schedule.

    ``executor``/``executor_workers`` select the *intra-job* batch
    backend (how one search evaluates its configuration batches);
    the ``workers`` argument of :func:`run_grid` remains the
    *inter-job* parallelism.  ``cache_dir`` attaches a persistent
    evaluation cache shared by every job that names the same path.
    """

    program: str
    algorithm: str
    threshold: float
    metric: str | None = None
    time_limit_seconds: float = _DEFAULT_TIME_LIMIT
    max_evaluations: int | None = None
    executor: str = "serial"
    executor_workers: int | None = None
    cache_dir: str | None = None

    def label(self) -> str:
        return f"{self.program}/{canonical_name(self.algorithm)}@{self.threshold:g}"


@dataclass
class JobResult:
    """Outcome (or failure) of one scheduled job."""

    job: SearchJob
    outcome: SearchOutcome | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.outcome is not None


def grid_jobs(
    programs: Sequence[str],
    algorithms: Sequence[str],
    thresholds: Sequence[float],
    time_limit_seconds: float = _DEFAULT_TIME_LIMIT,
    max_evaluations: int | None = None,
    executor: str = "serial",
    executor_workers: int | None = None,
    cache_dir: str | Path | None = None,
) -> list[SearchJob]:
    """The full cross product the paper's evaluation runs."""
    return [
        SearchJob(
            program=program,
            algorithm=algorithm,
            threshold=threshold,
            time_limit_seconds=time_limit_seconds,
            max_evaluations=max_evaluations,
            executor=executor,
            executor_workers=executor_workers,
            cache_dir=str(cache_dir) if cache_dir else None,
        )
        for program in programs
        for algorithm in algorithms
        for threshold in thresholds
    ]


def _run_job(job: SearchJob) -> JobResult:
    try:
        bench = get_benchmark(job.program)
        quality = QualitySpec(job.metric or bench.metric, job.threshold)
        batch_executor = make_executor(job.executor, job.executor_workers)
        cache = EvaluationCache(job.cache_dir) if job.cache_dir else None
        try:
            evaluator = ConfigurationEvaluator(
                bench,
                quality=quality,
                time_limit_seconds=job.time_limit_seconds,
                max_evaluations=job.max_evaluations,
                executor=batch_executor,
                cache=cache,
            )
            strategy = make_strategy(job.algorithm)
            return JobResult(job=job, outcome=strategy.run(evaluator))
        finally:
            batch_executor.close()
    except Exception:  # noqa: BLE001 — a failed job must not sink the grid
        return JobResult(job=job, error=traceback.format_exc())


def run_grid(jobs: Iterable[SearchJob], workers: int = 1) -> list[JobResult]:
    """Run analysis jobs, optionally on a worker pool.

    Results are returned in submission order regardless of completion
    order, so downstream tables are deterministic.
    """
    jobs = list(jobs)
    if workers <= 1:
        return [_run_job(job) for job in jobs]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_job, jobs))
