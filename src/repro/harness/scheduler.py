"""Parallel scheduling of analysis jobs.

"We use the support of HPC-MixPBench's harness to schedule each
analysis in parallel on a cluster ...  The harness offloads the search
for each combination of an application/algorithm to a separate node
but executes all the final binaries on the same node for consistency"
(paper Section IV).  A SLURM cluster is unavailable here, so the
scheduler fans the (program × algorithm × threshold) grid out over a
local worker pool instead; the *final* verification runs serially
through the Harness on "the same node", preserving the paper's
consistency discipline.

Durability (see docs/fault-tolerance.md): pass ``run_id`` to journal
the run under ``<runs_dir>/<run-id>/journal.jsonl`` — every completed
trial and every finished job is fsync'd to disk as it happens — and
``resume=<run-id>`` to continue a crashed run.  Finished jobs are
restored from the journal without re-running; in-flight jobs replay
their journaled trials through the evaluator (same simulated cost,
same EV) and continue from the cut point, so a resumed grid's results
are bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.benchmarks.base import get_benchmark
from repro.core.batch import make_executor
from repro.core.checkpoint import (
    DEFAULT_RUNS_DIR, JournalTrialStore, RunJournal, job_key,
)
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import SearchOutcome
from repro.runtime import fuse as _fuse
from repro.runtime.cache import EvaluationCache
from repro.search.registry import canonical_name, make_strategy, strategy_kwargs
from repro.verify.quality import QualitySpec

__all__ = ["SearchJob", "JobResult", "run_grid", "run_shard", "grid_jobs"]

_DEFAULT_TIME_LIMIT = 24 * 3600.0


@dataclass(frozen=True)
class SearchJob:
    """One (program, algorithm, threshold) analysis to schedule.

    ``executor``/``executor_workers`` select the *intra-job* batch
    backend (how one search evaluates its configuration batches);
    the ``workers`` argument of :func:`run_grid` remains the
    *inter-job* parallelism.  ``cache_dir`` attaches a persistent
    evaluation cache shared by every job that names the same path.
    ``trial_timeout``/``max_retries`` configure the executor's
    fault policy (per-trial wall-clock budget, transient-failure
    retries); see :class:`repro.core.batch.FaultPolicy`.
    """

    program: str
    algorithm: str
    threshold: float
    metric: str | None = None
    time_limit_seconds: float = _DEFAULT_TIME_LIMIT
    max_evaluations: int | None = None
    executor: str = "serial"
    executor_workers: int | None = None
    cache_dir: str | None = None
    trial_timeout: float | None = None
    max_retries: int = 0
    #: restrict the search space with the static dataflow pruner
    prune: bool = False
    #: order search locations by shadow-run sensitivity
    shadow: bool = False
    #: trace-fusion fast path (repro.runtime.fuse).  Fusion is
    #: bit-identical to interpreted execution, so this is a pure
    #: performance toggle; ``False`` forces it off for the shard's
    #: in-process executions (process-pool workers follow the
    #: ``MIXPBENCH_FUSE`` environment they inherit instead)
    fuse: bool = True
    #: store-rounding mode for emulated formats ("nearest" or
    #: "stochastic"); consumed by the bit-width bisection strategy,
    #: ignored by strategies that never emit custom formats
    rounding: str = "nearest"
    #: skip configurations whose statically certified error bound
    #: violates the threshold (sound: skips only, never accepts)
    screen: bool = False

    def label(self) -> str:
        return f"{self.program}/{canonical_name(self.algorithm)}@{self.threshold:g}"


@dataclass
class JobResult:
    """Outcome (or failure) of one scheduled job.

    A failed job carries both the full traceback (``error``) and the
    exception class name (``error_kind``) so schedulers and tables can
    surface *what* went wrong without parsing tracebacks.  ``resumed``
    marks results restored from a run journal rather than recomputed;
    it is session state, not part of the interchange payload.
    """

    job: SearchJob
    outcome: SearchOutcome | None = None
    error: str | None = None
    error_kind: str | None = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome is not None

    def to_json_dict(self) -> dict:
        return {
            "outcome": self.outcome.to_json_dict() if self.outcome else None,
            "error": self.error,
            "error_kind": self.error_kind,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping, job: SearchJob) -> "JobResult":
        outcome = payload.get("outcome")
        return cls(
            job=job,
            outcome=SearchOutcome.from_json_dict(outcome) if outcome else None,
            error=payload.get("error"),
            error_kind=payload.get("error_kind"),
        )


def grid_jobs(
    programs: Sequence[str],
    algorithms: Sequence[str],
    thresholds: Sequence[float],
    time_limit_seconds: float = _DEFAULT_TIME_LIMIT,
    max_evaluations: int | None = None,
    executor: str = "serial",
    executor_workers: int | None = None,
    cache_dir: str | Path | None = None,
    trial_timeout: float | None = None,
    max_retries: int = 0,
    prune: bool = False,
    shadow: bool = False,
    fuse: bool = True,
    rounding: str = "nearest",
    screen: bool = False,
) -> list[SearchJob]:
    """The full cross product the paper's evaluation runs."""
    return [
        SearchJob(
            program=program,
            algorithm=algorithm,
            threshold=threshold,
            time_limit_seconds=time_limit_seconds,
            max_evaluations=max_evaluations,
            executor=executor,
            executor_workers=executor_workers,
            cache_dir=str(cache_dir) if cache_dir else None,
            trial_timeout=trial_timeout,
            max_retries=max_retries,
            prune=prune,
            shadow=shadow,
            fuse=fuse,
            rounding=rounding,
            screen=screen,
        )
        for program in programs
        for algorithm in algorithms
        for threshold in thresholds
    ]


def run_shard(
    job: SearchJob,
    journal: RunJournal | None = None,
    key: str | None = None,
    replay: Mapping[str, dict] | None = None,
    cache: EvaluationCache | None = None,
) -> JobResult:
    """Run one (program, algorithm, threshold) shard to completion.

    This is the unit both :func:`run_grid` and the
    :class:`repro.service.scheduler.Scheduler` dispatch to workers.
    With a ``journal``/``key`` the shard's fresh trials are fsync'd as
    they complete and ``replay`` trials are replayed through the
    evaluator's cache path (bit-identical resume).  ``cache`` injects a
    shared :class:`~repro.runtime.cache.EvaluationCache` *instance*
    (the service's cross-tenant dedupe store); without it, one is
    opened from ``job.cache_dir`` when set.
    """
    # ``fuse=False`` forces the trace-fusion fast path off for the
    # duration of this shard.  The toggle is process-global (fusion is
    # bit-identical either way, so a concurrent mixed-flag grid risks
    # only a perf wobble, never a result difference); the previous
    # force is restored on the way out so a CLI-level --no-fuse
    # survives the shard.
    fuse_prev = _fuse.set_fusion_enabled(False) if not job.fuse else None
    try:
        bench = get_benchmark(job.program)
        quality = QualitySpec(job.metric or bench.metric, job.threshold)
        batch_executor = make_executor(
            job.executor, job.executor_workers,
            trial_timeout=job.trial_timeout, max_retries=job.max_retries,
        )
        if cache is None:
            cache = EvaluationCache(job.cache_dir) if job.cache_dir else None
        if journal is not None and key is not None:
            # fresh trials are journaled as they complete; journaled
            # ones replay with identical cost/EV (see repro.core.checkpoint)
            cache = JournalTrialStore(journal, key, replay, inner=cache)
        space_override = None
        prune_info = None
        if job.prune:
            from repro.typeforge.prune import prune_report

            report = bench.report()
            pruned = prune_report(report)
            space_override = pruned.space
            prune_info = pruned.stats(report.search_space())
        location_order = None
        shadow_info = None
        if job.shadow:
            # The shadow run is a pure in-process function of the
            # benchmark: recomputing it in each worker is deterministic
            # and identical across serial/thread/process execution.
            from repro.shadow import shadow_guidance

            location_order, shadow_info = shadow_guidance(bench)
        certificate = None
        screen_info = None
        if job.screen:
            # Like the shadow run, certification is a deterministic
            # in-process function of the benchmark.
            from repro.typeforge.errorbound import certify_benchmark

            _, certificate = certify_benchmark(bench)
            screen_info = certificate.info()
        try:
            evaluator = ConfigurationEvaluator(
                bench,
                quality=quality,
                time_limit_seconds=job.time_limit_seconds,
                max_evaluations=job.max_evaluations,
                executor=batch_executor,
                cache=cache,
                space_override=space_override,
                prune_info=prune_info,
                location_order=location_order,
                shadow_info=shadow_info,
                screen=certificate,
                screen_info=screen_info,
            )
            strategy = make_strategy(
                job.algorithm, **strategy_kwargs(job.algorithm, rounding=job.rounding)
            )
            result = JobResult(job=job, outcome=strategy.run(evaluator))
        finally:
            batch_executor.close()
    except Exception as exc:  # noqa: BLE001 — a failed job must not sink the grid
        result = JobResult(
            job=job, error=traceback.format_exc(), error_kind=type(exc).__name__,
        )
    finally:
        if not job.fuse:
            _fuse.set_fusion_enabled(fuse_prev)
    if journal is not None and key is not None:
        journal.append_job_done(key, result.to_json_dict())
    return result


def run_grid(
    jobs: Iterable[SearchJob],
    workers: int = 1,
    run_id: str | None = None,
    resume: str | None = None,
    runs_dir: str | Path | None = None,
) -> list[JobResult]:
    """Run analysis jobs, optionally on a worker pool.

    Results are returned in submission order regardless of completion
    order, so downstream tables are deterministic.  A job that fails —
    even with an exception that escapes :func:`run_shard` itself — is
    reported as an error :class:`JobResult`; it never aborts the
    collection of the remaining jobs.

    With ``run_id`` the run is journaled (crash-safe, fsync'd);
    ``resume`` names a previously journaled run to continue.  Passing
    both is allowed only when they agree.
    """
    jobs = list(jobs)
    if resume is not None:
        if run_id is not None and run_id != resume:
            raise ValueError(
                f"run_id {run_id!r} and resume {resume!r} name different runs"
            )
        run_id = resume
    journal: RunJournal | None = None
    if run_id is not None:
        journal = RunJournal(
            runs_dir if runs_dir is not None else DEFAULT_RUNS_DIR,
            run_id, jobs, resume=resume is not None,
        )
    try:
        state = journal.state if journal is not None else None
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[tuple[int, SearchJob, str]] = []
        for index, job in enumerate(jobs):
            key = job_key(index, job)
            payload = state.finished.get(key) if state is not None else None
            if payload is not None:
                restored = JobResult.from_json_dict(payload, job)
                restored.resumed = True
                results[index] = restored
            else:
                pending.append((index, job, key))

        def _execute(index: int, job: SearchJob, key: str) -> JobResult:
            replay = state.job_trials(key) if state is not None else None
            return run_shard(job, journal=journal, key=key, replay=replay)

        if workers <= 1:
            for index, job, key in pending:
                results[index] = _collect(job, _execute, index, job, key)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    (index, job, pool.submit(_execute, index, job, key))
                    for index, job, key in pending
                ]
                # collect via futures in submission order: one worker's
                # exception maps to *its* JobResult and nothing else
                for index, job, future in futures:
                    results[index] = _collect(job, future.result)
        return [result for result in results if result is not None]
    finally:
        if journal is not None:
            journal.close()


def _collect(job: SearchJob, invoke, *args) -> JobResult:
    """Invoke one job, mapping any escaped exception to an error result."""
    try:
        return invoke(*args)
    except Exception as exc:  # noqa: BLE001 — keep collecting the other jobs
        return JobResult(
            job=job, error=traceback.format_exc(), error_kind=type(exc).__name__,
        )
