"""The harness: deploy, analyse, verify (paper Section III-A.c).

"Invoking the harness with the YAML configuration file runs the
analysis Python code, which compiles the application, executes the
generated binaries, and performs the prescribed analysis and
evaluation to quantify quality loss and to measure execution time."

:class:`Harness` does exactly that against the suite registry: it
deploys the configured benchmark (input generation plays the role of
``make``), hands it to each configured analysis plugin, then
re-executes the tuned configuration to report its verified quality
and speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.benchmarks.base import Benchmark, get_benchmark
from repro.core.batch import make_executor
from repro.core.evaluator import measured_seconds
from repro.core.telemetry import TraceWriter
from repro.core.types import PrecisionConfig
from repro.harness.config import HarnessConfig, load_config
from repro.harness.plugins import AnalysisResult, DeployedApp, get_plugin
from repro.runtime import fuse as _fuse
from repro.runtime.cache import EvaluationCache
from repro.verify.quality import QualitySpec

__all__ = ["AnalysisReport", "HarnessReport", "Harness"]


@dataclass
class AnalysisReport:
    """Verified result of one analysis on one benchmark."""

    identifier: str
    plugin: str
    strategy: str
    artifact: Path
    evaluations: int
    analysis_hours: float
    timed_out: bool
    found_solution: bool
    speedup: float = math.nan
    error_value: float = math.nan
    config: PrecisionConfig | None = None
    #: the evaluator's telemetry block (see repro.core.telemetry)
    eval_stats: dict = field(default_factory=dict)
    #: static-pruning provenance (empty when pruning was off)
    prune: dict = field(default_factory=dict)
    #: shadow-guidance provenance (empty when guidance was off)
    shadow: dict = field(default_factory=dict)
    #: screening-certificate provenance (empty when screening was off)
    screen: dict = field(default_factory=dict)


@dataclass
class HarnessReport:
    """All analyses of one harness entry."""

    name: str
    benchmark: str
    metric: str
    threshold: float
    analyses: list[AnalysisReport] = field(default_factory=list)


class Harness:
    """Deploys benchmarks and runs configured analyses on them.

    Parameters
    ----------
    output_dir:
        Root for artifacts, traces and the evaluation cache.
    executor / workers:
        Default batch-execution backend handed to analyses
        (``serial``/``thread``/``process``); per-entry YAML keys
        override it.
    use_cache:
        Persistent evaluation cache toggle (default on; per-entry
        ``cache:`` overrides).  The cache lives under
        ``<output_dir>/cache/`` unless ``cache_dir`` points elsewhere.
    trace:
        When true, each entry writes a JSON-lines telemetry trace to
        ``<output_dir>/<entry>/trace.jsonl``.
    trial_timeout / max_retries:
        Fault policy handed to the batch executors: per-trial
        wall-clock budget in real seconds and transient-failure retry
        bound (see :class:`repro.core.batch.FaultPolicy` and
        docs/fault-tolerance.md).  Defaults leave fault handling off.
    prune:
        Restrict each analysis's search space with the static dataflow
        pruner (``--prune``; per-entry ``prune:`` overrides; see
        docs/static-analysis.md).
    shadow:
        Order each analysis's search locations by shadow-run
        sensitivity (``--order shadow``; per-entry ``shadow:``
        overrides; see docs/shadow-analysis.md).
    fuse:
        Trace-fusion fast path toggle (``--no-fuse``; per-entry
        ``fuse:`` overrides; see docs/runtime.md).  Fusion is
        bit-identical to interpreted execution — this only trades
        compile/replay overhead against per-op dispatch.
    screen:
        Certified error-bound screening (``--screen``; per-entry
        ``screen:`` overrides; see docs/error-bounds.md).  Screening
        only skips statically doomed configurations — it never accepts
        one, so each analysis's verified error matches the unscreened
        run.
    """

    def __init__(
        self,
        output_dir: str | Path = "results",
        executor: str = "serial",
        workers: int | None = None,
        use_cache: bool = True,
        cache_dir: str | Path | None = None,
        trace: bool = False,
        trial_timeout: float | None = None,
        max_retries: int = 0,
        prune: bool = False,
        shadow: bool = False,
        fuse: bool = True,
        rounding: str = "nearest",
        screen: bool = False,
    ) -> None:
        self.output_dir = Path(output_dir)
        self.executor = executor
        self.workers = workers
        self.use_cache = use_cache
        self.cache_dir = Path(cache_dir) if cache_dir else self.output_dir / "cache"
        self.trace = trace
        self.trial_timeout = trial_timeout
        self.max_retries = max_retries
        self.prune = prune
        self.shadow = shadow
        self.fuse = fuse
        self.rounding = rounding
        self.screen = screen

    def run_file(self, path: str | Path) -> list[HarnessReport]:
        """Run every entry of a YAML configuration file."""
        return [self.run_entry(entry) for entry in load_config(path)]

    def run_entry(self, entry: HarnessConfig) -> HarnessReport:
        """Deploy one benchmark and run all its configured analyses."""
        bench = get_benchmark(entry.benchmark)
        quality = self._quality_for(bench, entry)
        report = HarnessReport(
            name=entry.name,
            benchmark=bench.name,
            metric=quality.metric,
            threshold=quality.threshold,
        )
        bench.inputs()  # "build": generate inputs / data files
        executor = make_executor(
            entry.executor or self.executor,
            entry.workers if entry.workers is not None else self.workers,
            trial_timeout=self.trial_timeout,
            max_retries=self.max_retries,
        )
        cache_on = entry.cache if entry.cache is not None else self.use_cache
        cache = EvaluationCache(self.cache_dir) if cache_on else None
        trace = (
            TraceWriter(self.output_dir / entry.name / "trace.jsonl")
            if self.trace else None
        )
        app = DeployedApp(
            benchmark=bench,
            quality=quality,
            runs_per_config=entry.runs or bench.runs_per_config,
            time_limit_seconds=entry.time_limit_hours * 3600.0,
            output_dir=self.output_dir / entry.name,
            executor=executor,
            cache=cache,
            trace=trace,
            prune=entry.prune if entry.prune is not None else self.prune,
            shadow=entry.shadow if entry.shadow is not None else self.shadow,
            rounding=entry.rounding if entry.rounding is not None else self.rounding,
            screen=entry.screen if entry.screen is not None else self.screen,
        )
        # Entry-scoped fusion toggle: bit-identical either way, so
        # forcing it off (and restoring the previous force afterwards)
        # can only change how fast the analyses run, never what they
        # report.  The final verification runs under the same setting.
        fuse_on = entry.fuse if entry.fuse is not None else self.fuse
        fuse_prev = _fuse.set_fusion_enabled(False) if not fuse_on else None
        try:
            for spec in entry.analyses:
                plugin = get_plugin(spec.plugin)
                result = plugin.analysis(app, **dict(spec.extra_args))
                report.analyses.append(
                    self._verify(spec.identifier, spec.plugin, bench, quality, result)
                )
        finally:
            if not fuse_on:
                _fuse.set_fusion_enabled(fuse_prev)
            executor.close()
            if trace is not None:
                trace.close()
        return report

    @staticmethod
    def _quality_for(bench: Benchmark, entry: HarnessConfig) -> QualitySpec:
        metric = entry.metric or bench.metric
        threshold = entry.threshold if entry.threshold is not None else bench.default_threshold
        return QualitySpec(metric, threshold)

    def _verify(
        self,
        identifier: str,
        plugin_name: str,
        bench: Benchmark,
        quality: QualitySpec,
        result: AnalysisResult,
    ) -> AnalysisReport:
        """Re-run the tuned configuration for final quality/timing —
        the harness's own evaluation step, independent of whatever the
        search measured along the way."""
        outcome = result.outcome
        report = AnalysisReport(
            identifier=identifier,
            plugin=plugin_name,
            strategy=outcome.strategy,
            artifact=result.artifact,
            evaluations=outcome.evaluations,
            analysis_hours=outcome.analysis_seconds / 3600.0,
            timed_out=outcome.timed_out,
            found_solution=outcome.found_solution,
            eval_stats=dict(outcome.metadata.get("eval_stats") or {}),
            prune=dict(outcome.metadata.get("prune") or {}),
            shadow=dict(outcome.metadata.get("shadow") or {}),
            screen=dict(outcome.metadata.get("screen") or {}),
        )
        if not outcome.found_solution:
            return report
        config = outcome.final.config
        baseline = bench.execute(PrecisionConfig())
        tuned = bench.execute(config)
        report.error_value = quality.measure(baseline.output, tuned.output)
        base_t = measured_seconds(
            baseline.modeled_seconds, "baseline:" + PrecisionConfig().digest(),
            bench.runs_per_config,
        )
        tuned_t = measured_seconds(
            tuned.modeled_seconds, config.digest(), bench.runs_per_config,
        )
        report.speedup = base_t / tuned_t if tuned_t > 0 else math.nan
        report.config = config
        return report
