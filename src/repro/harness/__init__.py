"""Harness: YAML-driven deployment, analysis plugins, scheduling."""

from repro.harness.config import AnalysisSpec, HarnessConfig, load_config, parse_config
from repro.harness.plugins import (
    AnalysisPlugin,
    AnalysisResult,
    DeployedApp,
    FloatSmithPlugin,
    available_plugins,
    get_plugin,
    register_plugin,
)
from repro.harness.reporting import format_quality, format_speedup, format_table, write_csv
from repro.harness.runner import AnalysisReport, Harness, HarnessReport
from repro.harness.scheduler import JobResult, SearchJob, grid_jobs, run_grid

__all__ = [
    "HarnessConfig", "AnalysisSpec", "load_config", "parse_config",
    "AnalysisPlugin", "FloatSmithPlugin", "DeployedApp", "AnalysisResult",
    "register_plugin", "get_plugin", "available_plugins",
    "Harness", "HarnessReport", "AnalysisReport",
    "SearchJob", "JobResult", "grid_jobs", "run_grid",
    "format_table", "format_quality", "format_speedup", "write_csv",
]
