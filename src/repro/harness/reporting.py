"""Rendering of result tables and figure series.

The experiments in :mod:`repro.experiments` produce structured rows;
this module turns them into aligned text tables (what the benches
print) and CSV files (what downstream plotting consumes).  No plotting
library is assumed: "figures" are emitted as their data series.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "format_table", "write_csv", "format_quality", "format_speedup",
    "format_eval_stats", "format_prune_stats", "format_screen_stats",
    "format_shadow_stats",
]


def format_prune_stats(stats: dict | None) -> str:
    """One-line rendering of a pruning-stats block.

    ``11 -> 7 locations (4 frozen, 0 merged)`` — search-space locations
    before/after the static pruner, with the reduction provenance.
    An empty block (pruning off, or nothing prunable) renders as ``-``.
    """
    if not stats:
        return "-"
    before = stats.get("locations_before", "?")
    after = stats.get("locations_after", "?")
    frozen = len(stats.get("frozen", ()))
    merged = len(stats.get("merged", ()))
    return f"{before} -> {after} locations ({frozen} frozen, {merged} merged)"


def format_shadow_stats(stats: dict | None) -> str:
    """One-line rendering of a shadow-guidance summary block.

    ``5 vars ranked over 45 ops, top kernel.tmp (predicted 2.6e-08)``
    — the shadow run behind a guided search: ranked variable count,
    propagated operations, the most sensitive variable and the quality
    metric predicted for the uniformly-lowered program.  An empty
    block (guidance off) renders as ``-``.
    """
    if not stats:
        return "-"
    variables = stats.get("variables", "?")
    ops = stats.get("ops", "?")
    top = stats.get("top") or []
    leader = top[0][0] if top else "?"
    predicted = stats.get("predicted_error")
    if isinstance(predicted, (int, float)):
        suffix = f" (predicted {predicted:.1e})"
    elif predicted is not None:
        suffix = f" (predicted {predicted})"
    else:
        suffix = ""
    return f"{variables} vars ranked over {ops} ops, top {leader}{suffix}"


def format_screen_stats(stats: dict | None) -> str:
    """One-line rendering of a screening-certificate summary block.

    ``7 skipped (2 terms, anchor 1.6e-06, safety 128)`` — how many
    configurations the static certificate rejected without running,
    plus the calibration provenance.  An empty block (screening off)
    renders as ``-``.
    """
    if not stats:
        return "-"
    skipped = stats.get("screened", 0)
    terms = stats.get("terms", 0)
    anchor = stats.get("anchor")
    if isinstance(anchor, (int, float)):
        anchor_text = f", anchor {anchor:.1e}"
    elif anchor is not None:
        anchor_text = f", anchor {anchor}"
    else:
        anchor_text = ""
    safety = stats.get("safety")
    safety_text = f", safety {safety:g}" if isinstance(safety, (int, float)) else ""
    return f"{skipped} skipped ({terms} terms{anchor_text}{safety_text})"


def format_eval_stats(stats: dict | None) -> str:
    """One-line rendering of an ``eval_stats`` telemetry block.

    ``fresh=12 hits=3 (20%) wall=1.24s [process x4]`` — fresh
    executions, cache hits (memory + persistent) with their share of
    all evaluations answered, real host seconds spent executing, and
    the batch backend when it is not the serial default.
    """
    if not stats:
        return "-"
    fresh = stats.get("fresh_evaluations", 0)
    hits = stats.get("cache_hits", 0)
    total = fresh + hits
    share = f" ({hits / total:.0%})" if total and hits else ""
    parts = [f"fresh={fresh}", f"hits={hits}{share}"]
    wall = stats.get("wall_seconds")
    if wall is not None:
        parts.append(f"wall={wall:.2f}s")
    executor = stats.get("executor", "serial")
    if executor != "serial":
        parts.append(f"[{executor} x{stats.get('workers', 1)}]")
    incidents = [
        f"{key}={stats.get(key, 0)}"
        for key in ("timeouts", "retries", "worker_restarts")
        if stats.get(key, 0)
    ]
    if incidents:
        parts.append("!" + ",".join(incidents))
    return " ".join(parts)


def format_quality(value: float) -> str:
    """Render an error value the way the paper's tables do.

    NaN renders as ``NaN`` (the SRAD case), exact zero as ``0``; other
    magnitudes use power-of-ten notation.
    """
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if value == 0:
        return "0"
    exponent = math.floor(math.log10(abs(value)))
    mantissa = value / 10 ** exponent
    if abs(mantissa - 1.0) < 0.05:
        return f"10^{exponent}"
    return f"{mantissa:.2f}e{exponent}"


def format_speedup(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.2f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Align rows under headers, markdown-pipe style."""
    table = [list(map(str, headers))] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]

    def render(row: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render(table[0]))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render(row) for row in table[1:])
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> Path:
    """Write rows to CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
