"""Analysis plugin interface.

"The harness is extensible to implement different analysis techniques
on a deployed application through a plugin interface.  Implementing a
new analysis technique entails extending a base Python class, which
defines an analysis function" (paper Section III-A.c).

A plugin receives a :class:`DeployedApp` — the benchmark plus the
verification setup the harness prepared — and returns an
:class:`AnalysisResult` whose ``artifact`` is the path of the tuned
configuration written in the FloatSmith JSON interchange format (the
analogue of the paper's "path to the executable of the analyzed
application").

The built-in ``floatSmith`` plugin runs the Typeforge analysis and one
of the six CRAFT search strategies.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.benchmarks.base import Benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import SearchOutcome
from repro.errors import PluginError
from repro.search.registry import make_strategy
from repro.search.registry import strategy_kwargs as _registry_kwargs
from repro.verify.quality import QualitySpec

__all__ = [
    "DeployedApp", "AnalysisResult", "AnalysisPlugin",
    "FloatSmithPlugin", "register_plugin", "get_plugin", "available_plugins",
]


@dataclass
class DeployedApp:
    """A benchmark deployed by the harness, ready to be analysed.

    The three optional fields carry the harness's execution services
    down to the plugin's evaluator: a batch executor for parallel
    configuration evaluation, a persistent evaluation cache, and a
    trace writer for telemetry.  Plugins that ignore them keep the
    original serial behaviour.
    """

    benchmark: Benchmark
    quality: QualitySpec
    runs_per_config: int
    time_limit_seconds: float
    output_dir: Path
    executor: Any = None
    cache: Any = None
    trace: Any = None
    #: restrict the search space with the static dataflow pruner
    prune: bool = False
    #: order search locations by shadow-run sensitivity
    shadow: bool = False
    #: emulated-format store-rounding mode ("nearest"/"stochastic")
    rounding: str = "nearest"
    #: skip configurations whose certified error bound violates the
    #: threshold (sound: skips only, never accepts)
    screen: bool = False


@dataclass
class AnalysisResult:
    """What an analysis produced: the tuned-configuration artifact and
    the raw search outcome behind it."""

    artifact: Path
    outcome: SearchOutcome


class AnalysisPlugin(ABC):
    """Base class for harness analyses (paper's plugin interface)."""

    #: registry name used in YAML ``analysis.<id>.name``
    plugin_name: str = ""

    @abstractmethod
    def analysis(self, app: DeployedApp, **extra_args: Any) -> AnalysisResult:
        """Analyse a deployed application and return the artifact."""


class FloatSmithPlugin(AnalysisPlugin):
    """Source-level mixed-precision search via Typeforge + CRAFT."""

    plugin_name = "floatSmith"

    def analysis(self, app: DeployedApp, **extra_args: Any) -> AnalysisResult:
        algorithm = str(extra_args.pop("algorithm", "ddebug"))
        strategy_kwargs = dict(extra_args.pop("strategy_args", {}))
        max_evaluations = extra_args.pop("max_evaluations", None)
        prune = bool(extra_args.pop("prune", False)) or app.prune
        shadow = bool(extra_args.pop("shadow", False)) or app.shadow
        screen = bool(extra_args.pop("screen", False)) or app.screen
        rounding = str(extra_args.pop("rounding", "") or app.rounding)
        if extra_args:
            raise PluginError(
                f"floatSmith: unknown extra_args {sorted(extra_args)}"
            )

        bench = app.benchmark
        bench.runs_per_config = app.runs_per_config
        space_override = None
        prune_info = None
        if prune:
            from repro.typeforge.prune import prune_report

            report = bench.report()
            pruned = prune_report(report)
            space_override = pruned.space
            prune_info = pruned.stats(report.search_space())
        location_order = None
        shadow_info = None
        if shadow:
            from repro.shadow import shadow_guidance

            location_order, shadow_info = shadow_guidance(bench)
        certificate = None
        screen_info = None
        if screen:
            from repro.typeforge.errorbound import certify_benchmark

            _, certificate = certify_benchmark(bench)
            screen_info = certificate.info()
        evaluator = ConfigurationEvaluator(
            bench,
            quality=app.quality,
            time_limit_seconds=app.time_limit_seconds,
            max_evaluations=max_evaluations,
            executor=app.executor,
            cache=app.cache,
            trace=app.trace,
            space_override=space_override,
            prune_info=prune_info,
            location_order=location_order,
            shadow_info=shadow_info,
            screen=certificate,
            screen_info=screen_info,
        )
        for key, value in _registry_kwargs(algorithm, rounding=rounding).items():
            strategy_kwargs.setdefault(key, value)
        strategy = make_strategy(algorithm, **strategy_kwargs)
        outcome = strategy.run(evaluator)

        artifact = app.output_dir / f"{bench.name}-{strategy.strategy_name}.json"
        artifact.parent.mkdir(parents=True, exist_ok=True)
        best = outcome.final.config.to_json_dict() if outcome.found_solution else None
        artifact.write_text(json.dumps(
            {
                "program": bench.name,
                "strategy": strategy.strategy_name,
                "threshold": app.quality.threshold,
                "timed_out": outcome.timed_out,
                "configuration": best,
            },
            indent=2, sort_keys=True,
        ))
        return AnalysisResult(artifact=artifact, outcome=outcome)


_PLUGINS: dict[str, type[AnalysisPlugin]] = {}


def register_plugin(cls: type[AnalysisPlugin]) -> type[AnalysisPlugin]:
    """Register a plugin class under its ``plugin_name``."""
    if not cls.plugin_name:
        raise PluginError(f"{cls.__name__} has no plugin_name")
    _PLUGINS[cls.plugin_name.lower()] = cls
    return cls


def get_plugin(name: str) -> AnalysisPlugin:
    try:
        cls = _PLUGINS[name.strip().lower()]
    except KeyError:
        raise PluginError(
            f"unknown analysis plugin {name!r}; available: {sorted(_PLUGINS)}"
        ) from None
    return cls()


def available_plugins() -> tuple[str, ...]:
    return tuple(sorted(_PLUGINS))


register_plugin(FloatSmithPlugin)
