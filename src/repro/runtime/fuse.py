"""Trace fusion: compile hot recipe sequences into fused kernels.

PR 2's signature-memoised recipes classify one ufunc call at a time;
this module stitches *sequences* of those calls together.  A
per-workspace :class:`FuseTracer` watches the straight-line stream of
no-kwargs ``__call__`` ufuncs, learns chains whose op/dtype/shape
signatures repeat, and promotes a twice-seen chain into a
:class:`Region`: a tiny SSA-style IR plus one generated Python function
per *segment* (``compile()`` + ``exec``), cached on disk keyed by the
region's content digest.  When the first op of a promoted region shows
up again and its guards pass, the segment function computes every
result in the region at once; the tracer then hands the precomputed
results out one per matched kernel-level call, applying each op's
precomputed profile delta so ``Profile`` counters stay identical to the
interpreted path.

Exactness is the design invariant, enforced three ways:

* Generated code applies the recorded ufuncs to the recorded operands
  elementwise **in recorded order** — no reassociation, no
  simplification — so values are bit-identical to the interpreted path.
* Results are handed out lazily, one per matched call.  Any guard miss
  (different ufunc, operand identity, dtype/shape, scalar value) or any
  foreign event (store, fill, ``out=``, declaration) discards the
  pending results *before* anything observable happened and falls back
  to the interpreted path.
* Reference mode (:func:`repro.runtime.mparray.set_reference_mode`)
  never constructs a tracer, so the reference recorder is untouched.

Shadow mode reuses the same learner with wrapper-identity guards: one
generated segment updates the fp64 reference and every shadow replica
in a single pass (reference ops under the ambient errstate, shadow ops
under one ``errstate(all="ignore")`` block instead of one per op), and
hand-out routes through the real ``ShadowContext.observe`` so
attribution stats stay bit-identical.

Escape hatches: ``MIXPBENCH_FUSE=0`` / :func:`set_fusion_enabled`
disable fusion globally; ``MIXPBENCH_FUSE_NUMBA=1`` opts into an
``@njit`` tier for IEEE-exact same-dtype elementwise segments when
numba is importable (pure-codegen otherwise); ``MIXPBENCH_FUSE_CACHE``
or :func:`set_fuse_cache_dir` point the compiled-region disk cache at a
shared directory (the search service shares one across shards).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import weakref
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "FuseStats", "FuseTracer", "Region", "STATS", "fusion_enabled",
    "set_fusion_enabled", "set_fuse_cache_dir", "plain_tracer",
    "shadow_tracer", "registry_snapshot", "reset_registry",
]

#: minimum chain length worth compiling, per mode.  Plain mode needs
#: long chains: the interpreted fast path is already near raw-NumPy
#: parity, so only well-batched regions beat their own guard costs.
#: Shadow mode profits from every op (each one skips a wrapper
#: dispatch, an errstate toggle and the replica walk).
_MIN_OPS_PLAIN = 6
_MIN_OPS_SHADOW = 2
#: a plain-mode chain must fuse at least half its ops with a
#: predecessor (shadow mode saves per-op overhead even in 1-op
#: segments, plain mode does not)
_MAX_CHAIN = 32
_MAX_REGIONS = 512
_MAX_PENDING = 512
#: learning cooldown: after this many consecutive tracers (roughly,
#: executions) created without the registry learning anything new —
#: no novel pending chain, no region compiled — new tracers stop
#: recording chains.  That is the steady state of a long search,
#: where re-learning settled chains on every evaluation is pure
#: per-op overhead.  Matching/replay of promoted regions continues
#: regardless.
_IDLE_TRACERS = 12
#: while cooled down, every Nth tracer still learns, so a novel op
#: stream (new benchmark in a long-lived service process) re-arms
#: learning for everyone via the progress epoch.
_PROBE_INTERVAL = 64

_FALSEY = ("0", "false", "no", "off")


def _env_enabled(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY


_FORCED: bool | None = None


def fusion_enabled() -> bool:
    """Whether new workspaces get a fusion tracer.  CLI/harness force
    via :func:`set_fusion_enabled`; otherwise ``MIXPBENCH_FUSE``."""
    if _FORCED is not None:
        return _FORCED
    return _env_enabled("MIXPBENCH_FUSE", True)


def set_fusion_enabled(enabled: bool | None) -> bool | None:
    """Force fusion on/off process-wide (``None`` restores env
    control).  Fusion is bit-identical either way, so flipping this
    mid-run changes performance only.  Returns the previous forced
    value so scoped callers (harness entries, grid shards) can
    restore it."""
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    return previous


class FuseStats:
    """Process-global fusion counters (plain int increments: each is a
    single bytecode-atomic operation under the GIL, and the counters
    are diagnostics, not control flow)."""

    __slots__ = (
        "regions_compiled", "regions_loaded", "region_replays",
        "fused_ops", "guard_misses", "fallback_breaks",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.regions_compiled = 0
        self.regions_loaded = 0
        self.region_replays = 0
        self.fused_ops = 0
        self.guard_misses = 0
        self.fallback_breaks = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


STATS = FuseStats()


# ---------------------------------------------------------------------------
# Region IR
#
# Operand descriptors — each op in a region names its operands as:
#   ("T", i)   the result of region op i (guarded by identity)
#   ("E", s)   external array slot s (dtype/shape guarded at first
#              bind, identity-guarded on reuse — the aliasing guard)
#   ("C", c)   scalar constant c (guarded by type and value)
#   ("V", v)   varying scalar slot v (guarded by type, value bound at
#              the introducing op — loop-carried alphas/betas)
#
# An op *introduces* every E/V slot it uses first; introducing ops
# start a new segment, because only then is the operand available.


class RegionOp:
    __slots__ = (
        "ufunc", "descs", "result_dtype", "result_shape", "delta",
        "seg_start", "shadow_raw",
    )

    def __init__(self, ufunc, descs, result_dtype, result_shape, delta):
        self.ufunc = ufunc
        self.descs = descs
        self.result_dtype = result_dtype
        self.result_shape = result_shape
        #: precomputed (opkey, n, bytes_read, bytes_written, casts) for
        #: Profile.record_op_keyed — a pure function of the guarded
        #: dtypes/shapes, so applying it at hand-out reproduces the
        #: interpreted counters exactly.
        self.delta = delta
        self.seg_start = False
        #: shadow mode: raw input dtypes for the reference recording
        self.shadow_raw = None


class Region:
    """One compiled straight-line region."""

    __slots__ = (
        "mode", "ops", "ext_sigs", "consts", "var_types", "segments",
        "digest", "source", "n_shadow", "ext_guards", "penalty",
    )

    def __init__(self, mode, ops, ext_sigs, consts, var_types, n_shadow=0):
        self.mode = mode
        self.ops = ops
        self.ext_sigs = ext_sigs
        self.consts = consts
        self.var_types = var_types
        self.n_shadow = n_shadow
        #: list of (first_op_index, last_op_index_exclusive, callable)
        self.segments: list[tuple[int, int, Any]] = []
        self.digest = ""
        self.source = ""
        #: guard tuples with materialised dtypes, one per ext slot
        self.ext_guards: list[tuple] = []
        #: consecutive mid-region guard misses; a region that keeps
        #: diverging (data-dependent control flow) stops being tried
        self.penalty = 0


def _mark_segments(ops) -> list[tuple[int, int]]:
    """Split ops into segments at each op that introduces a new
    external or varying-scalar slot."""
    seen_e: set[int] = set()
    seen_v: set[int] = set()
    starts = []
    for i, op in enumerate(ops):
        introduces = i == 0
        for kind, idx in op.descs:
            if kind == "E" and idx not in seen_e:
                seen_e.add(idx)
                introduces = True
            elif kind == "V" and idx not in seen_v:
                seen_v.add(idx)
                introduces = True
        if introduces:
            starts.append(i)
            op.seg_start = True
    spans = []
    for j, start in enumerate(starts):
        end = starts[j + 1] if j + 1 < len(starts) else len(ops)
        spans.append((start, end))
    return spans


# ---------------------------------------------------------------------------
# Serialization (disk cache)

_IR_SCHEMA = "mixpbench/fuse-region/v1"


def _const_to_json(value):
    if isinstance(value, np.generic):
        return {"np": value.dtype.str, "hex": float(value).hex()}
    if isinstance(value, float):
        return {"f": value.hex()}
    if isinstance(value, bool):
        return {"b": value}
    return {"i": int(value)}


def _const_from_json(obj):
    if "np" in obj:
        return np.dtype(obj["np"]).type(float.fromhex(obj["hex"]))
    if "f" in obj:
        return float.fromhex(obj["f"])
    if "b" in obj:
        return bool(obj["b"])
    return int(obj["i"])


def _vartype_tag(value) -> str:
    if isinstance(value, np.generic):
        return "np:" + value.dtype.str
    if isinstance(value, bool):
        return "py:bool"
    if isinstance(value, float):
        return "py:float"
    return "py:int"


def _vartype_matches(tag: str, value) -> bool:
    if tag.startswith("np:"):
        return isinstance(value, np.generic) and value.dtype.str == tag[3:]
    if tag == "py:float":
        return type(value) is float
    if tag == "py:bool":
        return type(value) is bool
    return type(value) is int


def _region_ir(region: Region) -> dict:
    ops = []
    for op in region.ops:
        ops.append({
            "ufunc": op.ufunc.__name__,
            "descs": [list(d) for d in op.descs],
            "dtype": np.dtype(op.result_dtype).str,
            "shape": list(op.result_shape),
            "delta": [
                [op.delta[0][0].value, op.delta[0][1]],
                op.delta[1], op.delta[2], op.delta[3], op.delta[4],
            ],
            "shadow_raw": (
                None if op.shadow_raw is None
                else [None if d is None else np.dtype(d).str for d in op.shadow_raw]
            ),
        })
    return {
        "schema": _IR_SCHEMA,
        "mode": list(region.mode) if isinstance(region.mode, tuple) else region.mode,
        "n_shadow": region.n_shadow,
        "ops": ops,
        "ext_sigs": [
            [sig[0], sig[1], list(sig[2])]
            + ([list(sig[3])] if len(sig) > 3 else [])
            for sig in region.ext_sigs
        ],
        "consts": [_const_to_json(c) for c in region.consts],
        "var_types": list(region.var_types),
    }


def _region_digest(ir: dict) -> str:
    blob = json.dumps(ir, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _region_from_ir(ir: dict) -> Region | None:
    from repro.runtime.profiler import OpClass

    if ir.get("schema") != _IR_SCHEMA:
        return None
    mode = ir["mode"]
    if isinstance(mode, list):
        mode = tuple(mode)
    ops = []
    for entry in ir["ops"]:
        ufunc = getattr(np, entry["ufunc"], None)
        if not isinstance(ufunc, np.ufunc):
            return None
        dcls, ddt, n, br, bw, casts = (
            entry["delta"][0][0], entry["delta"][0][1],
            entry["delta"][1], entry["delta"][2], entry["delta"][3],
            entry["delta"][4],
        )
        delta = ((OpClass(dcls), ddt), n, br, bw, casts)
        op = RegionOp(
            ufunc,
            tuple((d[0], d[1]) for d in entry["descs"]),
            np.dtype(entry["dtype"]),
            tuple(entry["shape"]),
            delta,
        )
        if entry.get("shadow_raw") is not None:
            op.shadow_raw = tuple(
                None if d is None else np.dtype(d) for d in entry["shadow_raw"]
            )
        ops.append(op)
    ext_sigs = []
    for sig in ir["ext_sigs"]:
        if len(sig) > 3:
            ext_sigs.append(
                (sig[0], sig[1], tuple(sig[2]), tuple(sig[3]))
            )
        else:
            ext_sigs.append((sig[0], sig[1], tuple(sig[2])))
    region = Region(
        mode, ops, ext_sigs,
        [_const_from_json(c) for c in ir["consts"]],
        list(ir["var_types"]), ir.get("n_shadow", 0),
    )
    return region


# ---------------------------------------------------------------------------
# Codegen
#
# One generated module per region holds one function per segment.  The
# op stream is emitted verbatim — same ufunc, same operand order — so
# the segment computes exactly the values the interpreted path would.


def _operand_expr(desc, seg_start):
    kind, idx = desc
    if kind == "T":
        return f"t{idx}" if idx >= seg_start else f"T[{idx}]"
    if kind == "E":
        return f"E[{idx}]"
    if kind == "C":
        return f"C{idx}"
    return f"V[{idx}]"


def _codegen_plain(region: Region, spans) -> str:
    lines = []
    for seg_index, (start, end) in enumerate(spans):
        lines.append(f"def _segment_{seg_index}(E, V, T):")
        for i in range(start, end):
            op = region.ops[i]
            args = ", ".join(_operand_expr(d, start) for d in op.descs)
            lines.append(f"    t{i} = U{i}({args})")
            lines.append(f"    T[{i}] = t{i}")
        lines.append("")
    return "\n".join(lines)


def _shadow_ref_expr(desc, region, seg_start):
    kind, idx = desc
    if kind == "T":
        return f"t{idx}" if idx >= seg_start else f"T[{idx}]"
    if kind == "E":
        if region.ext_sigs[idx][0] == "w":
            return f"EW[{idx}]._data"
        return f"ER[{idx}][0]"
    if kind == "C":
        return f"C{idx}"
    return f"V[{idx}][0]"


def _shadow_k_expr(desc, region, seg_start, k):
    kind, idx = desc
    if kind == "T":
        # chain the *stored* shadow (asarray'd for 0-d results), which
        # is exactly what the handed-out wrapper's _shadows[k] holds
        op = region.ops[idx]
        name = f"sa{idx}_{k}" if op.result_shape == () else f"s{idx}_{k}"
        return name if idx >= seg_start else f"S[{idx}][{k}]"
    if kind == "E":
        if region.ext_sigs[idx][0] == "w":
            return f"EW[{idx}]._shadows[{k}]"
        return f"ER[{idx}][{k + 1}]"
    if kind == "C":
        const = region.consts[idx]
        if isinstance(const, np.floating):
            return f"C{idx}_{k}"
        return f"C{idx}"
    return f"V[{idx}][{k + 1}]"


def _codegen_shadow(region: Region, spans) -> str:
    n = region.n_shadow
    lines = []
    for seg_index, (start, end) in enumerate(spans):
        lines.append(f"def _segment_{seg_index}(cb, EW, ER, V, T, S):")
        for i in range(start, end):
            op = region.ops[i]
            args = ", ".join(_shadow_ref_expr(d, region, start) for d in op.descs)
            call = f"U{i}({args})"
            if op.result_shape == ():
                call = f"_A({call})"
            lines.append(f"    t{i} = {call}")
            lines.append(f"    T[{i}] = t{i}")
        lines.append('    with ERR(all="ignore"):')
        for i in range(start, end):
            op = region.ops[i]
            for k in range(n):
                args = ", ".join(
                    _shadow_k_expr(d, region, start, k) for d in op.descs
                )
                lines.append(f"        s{i}_{k} = cb(U{i}({args}), {k})")
                if op.result_shape == ():
                    lines.append(f"        sa{i}_{k} = _A(s{i}_{k})")
        for i in range(start, end):
            names = ", ".join(f"s{i}_{k}" for k in range(n))
            comma = "," if n == 1 else ""
            lines.append(f"    S[{i}] = [{names}{comma}]" if n else f"    S[{i}] = []")
        lines.append("")
    return "\n".join(lines)


# -- optional numba tier -----------------------------------------------------

#: ufuncs whose elementwise scalar translation is IEEE-exact in both
#: NumPy and compiled code (no libm-approximated transcendentals, no
#: NaN-sensitive selections)
_NUMBA_EXACT = {"add", "subtract", "multiply", "true_divide", "divide",
                "negative", "absolute", "sqrt"}
_NUMBA_SYMBOL = {
    "add": "({0} + {1})", "subtract": "({0} - {1})",
    "multiply": "({0} * {1})", "true_divide": "({0} / {1})",
    "divide": "({0} / {1})", "negative": "(-{0})",
    "absolute": "abs({0})", "sqrt": "np.sqrt({0})",
}
_numba_njit = None
_numba_probed = False


def _numba_available() -> bool:
    global _numba_njit, _numba_probed
    if not _numba_probed:
        _numba_probed = True
        if _env_enabled("MIXPBENCH_FUSE_NUMBA", False):
            try:
                from numba import njit  # type: ignore[import-not-found]
                _numba_njit = njit
            except Exception:
                _numba_njit = None
    return _numba_njit is not None


def _numba_eligible(region: Region, spans, span) -> bool:
    """A segment qualifies for the njit tier when every op is
    IEEE-exact and every array operand/result shares one float dtype
    and one shape (scalars are pre-cast to that dtype, so compiled
    promotion matches NEP-50 exactly)."""
    start, end = span
    dtype = region.ops[start].result_dtype
    if dtype.kind != "f" or dtype.itemsize not in (4, 8):
        return False
    shape = region.ops[start].result_shape
    if shape == () or any(s == 0 for s in shape):
        return False
    for i in range(start, end):
        op = region.ops[i]
        if op.ufunc.__name__ not in _NUMBA_EXACT:
            return False
        if op.result_dtype != dtype or op.result_shape != shape:
            return False
        for kind, idx in op.descs:
            if kind == "E":
                sig = region.ext_sigs[idx]
                if np.dtype(sig[1]) != dtype or tuple(sig[2]) != shape:
                    return False
            elif kind == "T":
                if idx < start:  # cross-segment temps stay in Python
                    return False
                ref = region.ops[idx]
                if ref.result_dtype != dtype or ref.result_shape != shape:
                    return False
            elif kind == "C":
                const = region.consts[idx]
                if isinstance(const, np.generic) and const.dtype != dtype:
                    return False
                if not isinstance(const, (float, int, np.floating)):
                    return False
            else:
                tag = region.var_types[idx]
                if tag not in ("py:float", "py:int", "np:" + dtype.str):
                    return False
    return True


def _codegen_numba_segment(region: Region, span) -> str:
    """Scalar-loop source for one eligible segment: all arrays flat,
    same length, one fused loop — the op order inside an iteration is
    the recorded order, so per-element results are bit-identical."""
    start, end = span
    ext_used = sorted({
        idx for i in range(start, end)
        for kind, idx in region.ops[i].descs if kind == "E"
    })
    var_used = sorted({
        idx for i in range(start, end)
        for kind, idx in region.ops[i].descs if kind == "V"
    })
    args = (
        [f"e{s}" for s in ext_used] + [f"v{s}" for s in var_used]
        + [f"o{i}" for i in range(start, end)]
    )
    lines = [f"def _nb(" + ", ".join(args) + "):"]
    lines.append("    for _i in range(o%d.shape[0]):" % start)
    for i in range(start, end):
        op = region.ops[i]
        exprs = []
        for kind, idx in op.descs:
            if kind == "T":  # eligibility guarantees idx >= start
                exprs.append(f"x{idx}")
            elif kind == "E":
                exprs.append(f"e{idx}[_i]")
            elif kind == "C":
                exprs.append(f"C{idx}")
            else:
                exprs.append(f"v{idx}")
        body = _NUMBA_SYMBOL[op.ufunc.__name__].format(*exprs)
        lines.append(f"        x{i} = {body}")
        lines.append(f"        o{i}[_i] = x{i}")
    return "\n".join(lines) + "\n"


class _NumbaSegment:
    """Runtime wrapper: try the jitted loop on contiguous operands,
    fall back permanently to the generated-Python segment on any
    compile or execution failure."""

    __slots__ = ("_python", "_region", "_span", "_jit", "_dead", "_lock")

    def __init__(self, python_fn, region, span):
        self._python = python_fn
        self._region = region
        self._span = span
        self._jit = None
        self._dead = False
        self._lock = threading.Lock()

    def __call__(self, E, V, T):
        region, (start, end) = self._region, self._span
        if self._dead:
            return self._python(E, V, T)
        try:
            jit = self._jit
            if jit is None:
                jit = self._compile()
            dtype = region.ops[start].result_dtype
            shape = region.ops[start].result_shape
            ext_used = sorted({
                idx for i in range(start, end)
                for kind, idx in region.ops[i].descs if kind == "E"
            })
            var_used = sorted({
                idx for i in range(start, end)
                for kind, idx in region.ops[i].descs if kind == "V"
            })
            flats = []
            for s in ext_used:
                arr = E[s]
                if not arr.flags.c_contiguous:
                    return self._python(E, V, T)
                flats.append(arr.reshape(-1))
            scalars = [dtype.type(V[s]) for s in var_used]
            outs = [np.empty(shape, dtype=dtype) for _ in range(start, end)]
            jit(*flats, *scalars, *[o.reshape(-1) for o in outs])
            for offset, out in enumerate(outs):
                T[start + offset] = out
            return None
        except Exception:
            self._dead = True
            return self._python(E, V, T)

    def _compile(self):
        with self._lock:
            if self._jit is None:
                region, span = self._region, self._span
                dtype = region.ops[span[0]].result_dtype
                source = _codegen_numba_segment(region, span)
                namespace: dict[str, Any] = {"np": np}
                for ci, const in enumerate(region.consts):
                    namespace[f"C{ci}"] = dtype.type(const)
                exec(compile(source, "<fuse-numba>", "exec"), namespace)
                self._jit = _numba_njit(cache=False)(namespace["_nb"])
        return self._jit


def _compile_region(region: Region) -> None:
    """Generate, compile and bind the segment callables."""
    spans = _mark_segments(region.ops)
    shadow = region.mode != "plain"
    source = (
        _codegen_shadow(region, spans) if shadow
        else _codegen_plain(region, spans)
    )
    namespace: dict[str, Any] = {"np": np, "_A": np.asarray, "ERR": np.errstate}
    for i, op in enumerate(region.ops):
        namespace[f"U{i}"] = op.ufunc
    for ci, const in enumerate(region.consts):
        namespace[f"C{ci}"] = const
        if shadow and isinstance(const, np.floating):
            for k in range(region.n_shadow):
                sdt = np.dtype(region.mode[1 + k])
                namespace[f"C{ci}_{k}"] = sdt.type(const)
    code = compile(source, f"<fuse-region-{region.digest or 'new'}>", "exec")
    exec(code, namespace)
    region.source = source
    region.ext_guards = []
    for sig in region.ext_sigs:
        if len(sig) > 3:
            region.ext_guards.append((
                sig[0], np.dtype(sig[1]), tuple(sig[2]),
                tuple(np.dtype(s) for s in sig[3]),
            ))
        else:
            region.ext_guards.append((sig[0], np.dtype(sig[1]), tuple(sig[2])))
    region.segments = []
    use_numba = not shadow and _numba_available()
    for seg_index, span in enumerate(spans):
        fn = namespace[f"_segment_{seg_index}"]
        if use_numba and _numba_eligible(region, spans, span):
            fn = _NumbaSegment(fn, region, span)
        region.segments.append((span[0], span[1], fn))


# ---------------------------------------------------------------------------
# Registry: promoted regions, shared per process, optional disk cache


class _Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: mode key -> ufunc -> [Region] (probed lock-free: dict/list
        #: reads are single atomic ops under the GIL; mutation happens
        #: under the lock and only ever appends)
        self._heads: dict[Any, dict[Any, list[Region]]] = {}
        self._digests: set[str] = set()
        #: chain keys whose second sighting already ran the builder —
        #: unworthy, uncompilable, or compiled (possibly via another
        #: key); never worth re-attempting, re-learning is pure overhead
        self._settled: set[Any] = set()
        #: chain-key -> first sighting's per-op operand values
        self._pending: dict[Any, list] = {}
        self._region_count = 0
        self._cache_dir: Path | None = None
        self._cache_loaded = False
        #: learning-cooldown state, independent per mode key (plain
        #: and each shadow dtype configuration): the epoch bumps on
        #: progress (a novel pending chain or a compiled region);
        #: tracers created while it stands still count toward the
        #: cooldown.  Per-mode matters: a long plain search must not
        #: cool down learning for the first shadow analysis that
        #: follows it in the same process.
        self._epoch: dict[Any, int] = {}
        #: mode key -> [epoch last seen, idle tracers, tracers created]
        self._cooldown: dict[Any, list] = {}

    def learning_active(self, mode_key) -> bool:
        """Whether a newly-built tracer for ``mode_key`` should record
        chains.  True until ``_IDLE_TRACERS`` consecutive tracers of
        that mode have come and gone without any registry progress for
        it; after that, only every ``_PROBE_INTERVAL``-th tracer
        learns, so a genuinely new op stream can still re-arm learning
        for everyone."""
        with self._lock:
            state = self._cooldown.get(mode_key)
            if state is None:
                state = self._cooldown[mode_key] = [0, 0, 0]
            state[2] += 1
            epoch = self._epoch.get(mode_key, 0)
            if epoch != state[0]:
                state[0] = epoch
                state[1] = 0
                return True
            state[1] += 1
            if state[1] <= _IDLE_TRACERS:
                return True
            return state[2] % _PROBE_INTERVAL == 0

    def heads_for(self, mode_key) -> dict:
        heads = self._heads.get(mode_key)
        if heads is None:
            with self._lock:
                heads = self._heads.setdefault(mode_key, {})
        if not self._cache_loaded and self._cache_dir is not None:
            self._load_cache()
        return heads

    def set_cache_dir(self, path) -> None:
        with self._lock:
            self._cache_dir = Path(path) if path is not None else None
            self._cache_loaded = False

    def _load_cache(self) -> None:
        with self._lock:
            if self._cache_loaded or self._cache_dir is None:
                return
            self._cache_loaded = True
            directory = self._cache_dir
        try:
            files = sorted(directory.glob("*.json"))
        except OSError:
            return
        for path in files:
            try:
                ir = json.loads(path.read_text())
                region = _region_from_ir(ir)
                if region is None:
                    continue
                region.digest = _region_digest(ir)
                _compile_region(region)
            except Exception:
                continue  # a stale/corrupt cache entry is never fatal
            if self._install(region):
                STATS.regions_loaded += 1

    def _install(self, region: Region) -> bool:
        with self._lock:
            if region.digest in self._digests or self._region_count >= _MAX_REGIONS:
                return False
            self._digests.add(region.digest)
            self._region_count += 1
            mode_key = region.mode
            # progress: re-arm this mode's learning cooldown
            self._epoch[mode_key] = self._epoch.get(mode_key, 0) + 1
            heads = self._heads.setdefault(mode_key, {})
            head_ufunc = region.ops[0].ufunc
            heads.setdefault(head_ufunc, []).append(region)
        return True

    def _store_cache(self, region: Region, ir: dict) -> None:
        directory = self._cache_dir
        if directory is None:
            return
        try:
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{region.digest}.json"
            if path.exists():
                return
            payload = dict(ir)
            payload["source"] = region.source
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            tmp.replace(path)
        except OSError:
            pass  # disk cache is best-effort

    def offer_chain(self, chain_key, values, build) -> None:
        """Second identical sighting of a chain promotes it: ``values``
        carries the sighting's per-op scalar operands so stable ones
        become guarded constants and varying ones parameter slots."""
        with self._lock:
            if self._region_count >= _MAX_REGIONS or chain_key in self._settled:
                return
            first = self._pending.get(chain_key)
            if first is None:
                if len(self._pending) >= _MAX_PENDING:
                    self._pending.pop(next(iter(self._pending)))
                self._pending[chain_key] = values
                # a novel chain: keep this mode learning
                mode = chain_key[0]
                self._epoch[mode] = self._epoch.get(mode, 0) + 1
                return
            self._pending.pop(chain_key, None)
        region = build(first, values)
        # Whatever happens from here the chain key is *settled*:
        # unworthy, uncompilable, a duplicate of an installed region,
        # or freshly installed — in every case re-learning this exact
        # chain can teach us nothing (and would keep bumping the
        # learning-cooldown epoch forever via the pending dance).
        self._settle(chain_key)
        if region is None:
            return
        ir = _region_ir(region)
        region.digest = _region_digest(ir)
        with self._lock:
            if region.digest in self._digests:
                return  # already promoted via another chain key
        try:
            _compile_region(region)
        except Exception:
            return  # unsupported shape of chain: never fatal
        if self._install(region):
            STATS.regions_compiled += 1
            self._store_cache(region, ir)

    def _settle(self, chain_key) -> None:
        with self._lock:
            if len(self._settled) >= _MAX_PENDING:
                self._settled.clear()
            self._settled.add(chain_key)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "regions": self._region_count,
                "pending_chains": len(self._pending),
                "learning": {
                    str(mode): state[1] <= _IDLE_TRACERS
                    for mode, state in self._cooldown.items()
                },
                "modes": {
                    str(mode): sum(len(v) for v in heads.values())
                    for mode, heads in self._heads.items()
                },
            }


_REGISTRY = _Registry()


def set_fuse_cache_dir(path) -> None:
    """Point the compiled-region disk cache at ``path`` (``None``
    disables).  The service scheduler shares one directory across
    shards so every worker reuses every other worker's regions."""
    _REGISTRY.set_cache_dir(path)


def registry_snapshot() -> dict:
    return _REGISTRY.snapshot()


def reset_registry() -> None:
    """Drop every promoted region and pending chain (tests)."""
    global _REGISTRY
    _REGISTRY = _Registry()
    env_dir = os.environ.get("MIXPBENCH_FUSE_CACHE")
    if env_dir:
        _REGISTRY.set_cache_dir(env_dir)


if os.environ.get("MIXPBENCH_FUSE_CACHE"):
    _REGISTRY.set_cache_dir(os.environ["MIXPBENCH_FUSE_CACHE"])


# ---------------------------------------------------------------------------
# Per-op profile delta
#
# Each region op carries the exact (opkey, n, bytes_read, bytes_written,
# casts) tuple the interpreted recorder would pass to
# ``Profile.record_op_keyed`` — a pure function of the guarded
# dtypes/shapes, computed once at learning time from the same recipe
# table the interpreter uses.


def _call_delta(ufunc, raw_operands, raw_result):
    """The fast-recorder numbers for one no-kwargs ``__call__``, or
    ``None`` when the signature isn't a plain elementwise call."""
    from repro.runtime import mparray as _mp

    if isinstance(raw_result, np.ndarray):
        result_dtype = raw_result.dtype
        result_size = raw_result.size
        bytes_written = float(raw_result.nbytes)
    elif isinstance(raw_result, np.generic):
        result_dtype = raw_result.dtype
        result_size = 1
        bytes_written = float(result_dtype.itemsize)
    else:
        return None
    bytes_read = 0.0
    max_input = 1
    dts = []
    for x in raw_operands:
        if isinstance(x, np.ndarray):
            dts.append(x.dtype)
            bytes_read += x.nbytes
            if x.size > max_input:
                max_input = x.size
        else:
            dts.append(None)
    key = (ufunc, "__call__", result_dtype, *dts)
    recipe = _mp._RECIPES.get(key)
    if recipe is None:
        recipe = _mp._build_ufunc_recipe(ufunc, "__call__", result_dtype, tuple(dts))
    opkey, cast_slots, mode, _first = recipe
    if mode != _mp._MODE_CALL:
        return None
    n = float(result_size if result_size > max_input else max_input)
    casts = 0.0
    for slot in cast_slots:
        casts += raw_operands[slot].size
    return (opkey, n, float(bytes_read), bytes_written, casts)


def _scalar_equal(v1, v2) -> bool:
    if type(v1) is not type(v2):
        return False
    try:
        return bool(v1 == v2)  # NaN != NaN -> becomes a varying slot
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Matching + learning


#: consecutive mid-region guard misses after which a region stops being
#: tried — a region whose trace keeps diverging (data-dependent control
#: flow) would otherwise pay speculative execution every iteration
_PENALTY_LIMIT = 8


class _Match:
    """One in-flight activation of a region: bound operand slots plus
    the segment-computed results awaiting hand-out.  Holds strong
    references, so an in-flight temporary can never be collected (or
    have its buffer reused) before it is handed out."""

    __slots__ = ("region", "pos", "next_seg", "E", "ER", "V", "T", "S", "W")

    def __init__(self, region: Region):
        self.region = region
        self.pos = 0
        self.next_seg = 0
        self.E: list = [None] * len(region.ext_sigs)
        self.ER: list = [None] * len(region.ext_sigs)
        self.V: list = [None] * len(region.var_types)
        self.T: list = [None] * len(region.ops)
        self.S: list = [None] * len(region.ops)
        self.W: list = [None] * len(region.ops)


class FuseTracer:
    """Per-workspace trace recorder and region matcher (plain mode).

    The hot-path contract with ``mparray``'s operator closures:

    * ``offer2``/``offer1`` are called *before* a no-kwargs ``__call__``
      executes.  A non-``None`` return is the op's raw result (already
      profiled); the caller wraps and returns it without executing.
      ``None`` means "run the interpreted path" — and guarantees no
      match is active, so the closure's refcount-based reuse tests see
      exactly the frame they were calibrated for.
    * ``note2``/``note1`` are called after the interpreted execution
      with the raw operands and result; they drive chain learning and
      hold only weak references, so learning never perturbs refcounts.
    * ``foreign`` is called by every mutation path (stores, fills,
      ``out=``, ``ufunc.at``, declarations).  It discards any pending
      region results before the mutation happens, which is the whole
      aliasing story: a buffer can never change between segment
      execution and hand-out.

    Pure derived reads (basic indexing, reductions, ``astype``/``copy``,
    ``np.dot``-style functions) are *transparent*: they neither advance
    nor break anything, and their results re-enter a chain as fresh
    external slots.
    """

    mode_key: Any = "plain"
    _min_ops = _MIN_OPS_PLAIN

    __slots__ = (
        "_profile", "_heads", "_active", "_learning",
        "_chain", "_values", "_key",
        "_temp_ids", "_temp_refs", "_ext_ids", "_ext_refs", "_ext_sigs",
    )

    def __init__(self, profile):
        self._profile = profile
        self._heads = _REGISTRY.heads_for(self.mode_key)
        self._active: _Match | None = None
        self._learning = _REGISTRY.learning_active(self.mode_key)
        self._reset_learning()

    def _reset_learning(self) -> None:
        self._chain: list = []
        self._values: list = []
        self._key: list = []
        self._temp_ids: dict[int, int] = {}
        self._temp_refs: list = []
        self._ext_ids: dict[int, int] = {}
        self._ext_refs: list = []
        self._ext_sigs: list = []

    # -- matching (hot path) ------------------------------------------------

    def offer2(self, ufunc, x0, x1):
        m = self._active
        if m is not None:
            return self._advance(m, ufunc, (x0, x1))
        regions = self._heads.get(ufunc)
        if regions is not None:
            return self._try_start(regions, ufunc, (x0, x1))
        return None

    def offer1(self, ufunc, x0):
        m = self._active
        if m is not None:
            return self._advance(m, ufunc, (x0,))
        regions = self._heads.get(ufunc)
        if regions is not None:
            return self._try_start(regions, ufunc, (x0,))
        return None

    def _try_start(self, regions, ufunc, operands):
        for region in regions:
            if region.penalty >= _PENALTY_LIMIT:
                continue
            if not self._prestart(region, operands):
                continue  # cheap reject before any _Match allocation
            m = _Match(region)
            if not self._match_op(m, region, 0, operands):
                continue
            if not self._run_segment(m):
                region.penalty += 1
                STATS.guard_misses += 1
                continue
            STATS.region_replays += 1
            return self._handout(m, operands)
        return None

    def _advance(self, m, ufunc, operands):
        region = m.region
        pos = m.pos
        op = region.ops[pos]
        if ufunc is op.ufunc and self._match_op(m, region, pos, operands):
            if op.seg_start and not self._run_segment(m):
                self._discard(region)
                return self._reprobe(ufunc, operands)
            return self._handout(m, operands)
        self._discard(region)
        return self._reprobe(ufunc, operands)

    def _discard(self, region):
        self._active = None
        region.penalty += 1
        STATS.guard_misses += 1

    def _reprobe(self, ufunc, operands):
        regions = self._heads.get(ufunc)
        if regions is not None:
            return self._try_start(regions, ufunc, operands)
        return None

    def _prestart(self, region, operands):
        """Guard pre-filter for an op-0 match, run before allocating a
        :class:`_Match`: every region whose head ufunc is hot pays this
        on *each* occurrence of that ufunc, so it must stay allocation-
        free.  Only value guards are checked (op 0 cannot reference a
        temp, and aliasing binds are re-checked by ``_match_op``)."""
        descs = region.ops[0].descs
        if len(descs) != len(operands):
            return False
        for desc, x in zip(descs, operands):
            kind = desc[0]
            if kind == "E":
                guard = region.ext_guards[desc[1]]
                if (
                    type(x) is not np.ndarray
                    or x.dtype != guard[1]
                    or x.shape != guard[2]
                ):
                    return False
            elif kind == "C":
                if not _scalar_equal(x, region.consts[desc[1]]):
                    return False
            elif kind == "V":
                if not _vartype_matches(region.var_types[desc[1]], x):
                    return False
        return True

    def _match_op(self, m, region, pos, operands):
        op = region.ops[pos]
        descs = op.descs
        if len(descs) != len(operands):
            return False
        for desc, x in zip(descs, operands):
            kind = desc[0]
            idx = desc[1]
            if kind == "T":
                if x is not m.T[idx]:
                    return False
            elif kind == "E":
                bound = m.E[idx]
                if bound is not None:
                    if x is not bound:  # the aliasing/identity guard
                        return False
                elif not self._bind_ext(m, region, idx, x):
                    return False
            elif kind == "C":
                if not _scalar_equal(x, region.consts[idx]):
                    return False
            else:  # V
                if m.V[idx] is None:
                    if not _vartype_matches(region.var_types[idx], x):
                        return False
                    self._bind_var(m, idx, x)
                elif x is not m.V[idx] and not _scalar_equal(x, m.V[idx]):
                    return False
        return True

    def _bind_ext(self, m, region, idx, x) -> bool:
        guard = region.ext_guards[idx]
        if (
            type(x) is np.ndarray
            and x.dtype == guard[1]
            and x.shape == guard[2]
        ):
            m.E[idx] = x
            return True
        return False

    def _bind_var(self, m, idx, x) -> None:
        m.V[idx] = x

    def _run_segment(self, m) -> bool:
        start, end, fn = m.region.segments[m.next_seg]
        m.next_seg += 1
        try:
            fn(m.E, m.V, m.T)
        except Exception:
            return False
        return True

    def _handout(self, m, operands):
        pos = m.pos
        region = m.region
        d = region.ops[pos].delta
        self._profile.record_op_keyed(d[0], d[1], d[2], d[3], d[4])
        STATS.fused_ops += 1
        result = m.T[pos]
        pos += 1
        if pos == len(region.ops):
            # Decay rather than reset: a region that breaks more often
            # than it completes (a prefix-collision with a shorter true
            # sequence wastes a segment execution per break) drifts to
            # the retire limit, while mostly-completing regions pin at 0.
            if region.penalty:
                region.penalty -= 1
            self._active = None  # completed: release the temp refs
        else:
            m.pos = pos
            self._active = m
        return result

    # -- learning ------------------------------------------------------------

    def note2(self, ufunc, x0, x1, result):
        if not self._learning:
            return
        if not (type(result) is np.ndarray and result.ndim):
            self._finish_chain()
            return
        d0 = self._learn_operand(x0)
        if d0 is None:
            self._finish_chain()
            return
        d1 = self._learn_operand(x1)
        if d1 is None:
            self._finish_chain()
            return
        self._push(ufunc, (d0, d1), (x0, x1), result, result)

    def note1(self, ufunc, x0, result):
        if not self._learning:
            return
        if not (type(result) is np.ndarray and result.ndim):
            self._finish_chain()
            return
        d0 = self._learn_operand(x0)
        if d0 is None:
            self._finish_chain()
            return
        self._push(ufunc, (d0,), (x0,), result, result)

    def _learn_operand(self, x):
        if type(x) is np.ndarray:
            if x.ndim == 0:
                return None
            key = id(x)
            idx = self._temp_ids.get(key)
            if idx is not None and self._temp_refs[idx]() is x:
                return ("T", idx)
            slot = self._ext_ids.get(key)
            if slot is not None and self._ext_refs[slot]() is x:
                return ("E", slot)
            slot = len(self._ext_sigs)
            self._ext_ids[key] = slot
            self._ext_refs.append(weakref.ref(x))
            self._ext_sigs.append(("a", x.dtype.str, x.shape))
            return ("E", slot)
        t = type(x)
        if t is float or t is bool or t is int:
            return ("S", x)
        if isinstance(x, np.generic) and x.dtype.kind in "fiub":
            return ("S", x)
        return None

    def _remember_result(self, i, result) -> None:
        self._temp_ids[id(result)] = i
        self._temp_refs.append(weakref.ref(result))

    def _push(self, ufunc, descs, raw_operands, raw_result, result):
        delta = _call_delta(ufunc, raw_operands, raw_result)
        if delta is None:
            self._finish_chain()
            return
        i = len(self._chain)
        vals: list = []
        key_descs = []
        norm = []
        for d in descs:
            if d[0] == "S":
                key_descs.append(("S", _vartype_tag(d[1])))
                norm.append(("S", len(vals)))
                vals.append(d[1])
            elif d[0] == "E":
                sig = self._ext_sigs[d[1]]
                key_descs.append(("E", d[1]) + sig[1:])
                norm.append(d)
            else:
                key_descs.append(d)
                norm.append(d)
        rdtype = raw_result.dtype
        rshape = tuple(np.shape(raw_result))
        self._chain.append((ufunc, tuple(norm), rdtype, rshape, delta))
        self._values.append(tuple(vals))
        self._key.append((ufunc, tuple(key_descs), rdtype.str, rshape))
        self._remember_result(i, result)
        if len(self._chain) >= _MAX_CHAIN:
            self._finish_chain()

    def foreign(self) -> None:
        m = self._active
        if m is not None:
            self._active = None
            m.region.penalty += 1
            STATS.fallback_breaks += 1
        if self._chain:
            self._finish_chain()

    def _finish_chain(self) -> None:
        chain = self._chain
        if not chain:
            return
        values = self._values
        key = self._key
        ext_sigs = self._ext_sigs
        self._reset_learning()
        if len(chain) < self._min_ops:
            return
        chain_key = (self.mode_key, tuple(key))
        build = self._make_builder(chain, ext_sigs)
        _REGISTRY.offer_chain(chain_key, values, build)

    def _make_builder(self, chain, ext_sigs):
        mode = self.mode_key
        n_shadow = self._n_shadow()
        worth_it = self._worth_it

        def build(first, second):
            consts: list = []
            var_types: list = []
            ops = []
            for i, (ufunc, descs, rdtype, rshape, delta) in enumerate(chain):
                final = []
                for d in descs:
                    if d[0] == "S":
                        v1 = first[i][d[1]]
                        v2 = second[i][d[1]]
                        if _scalar_equal(v1, v2):
                            final.append(("C", len(consts)))
                            consts.append(v2)
                        else:
                            final.append(("V", len(var_types)))
                            var_types.append(_vartype_tag(v2))
                    else:
                        final.append(d)
                ops.append(RegionOp(ufunc, tuple(final), rdtype, rshape, delta))
            region = Region(mode, ops, list(ext_sigs), consts, var_types, n_shadow)
            spans = _mark_segments(ops)
            if not worth_it(ops, spans):
                return None
            return region

        return build

    def _n_shadow(self) -> int:
        return 0

    @staticmethod
    def _worth_it(ops, spans) -> bool:
        # Plain mode has a high bar: the recipe-memoised interpreter is
        # already within a few percent of raw NumPy per op, while every
        # promoted region taxes each occurrence of its head ufunc with
        # a guard pre-check.  Only regions that batch several dispatches
        # per segment win more at replay than their matching costs —
        # measured on the suite, short regions (2-3 ops/segment) are a
        # consistent net loss.
        return len(ops) >= _MIN_OPS_PLAIN and len(ops) >= 3 * len(spans)


def plain_tracer(profile) -> FuseTracer | None:
    """A tracer for one plain workspace, or ``None`` when fusion is
    disabled, the reference recorder is active, or the tracer would be
    provably inert (learning cooled down and no plain regions to
    match) — in which case the per-op offer/note calls are skipped
    entirely and the workspace runs at interpreted speed."""
    from repro.runtime import mparray as _mp

    if not fusion_enabled() or not _mp._FAST_MODE:
        return None
    tracer = FuseTracer(profile)
    if not tracer._learning and not tracer._heads:
        return None
    return tracer


class ShadowFuseTracer(FuseTracer):
    """The shadow-mode tracer: temps and externals are *wrappers*
    (identity-guarded ``ShadowArray`` objects), one generated segment
    updates the reference and every shadow replica in a single pass,
    and hand-out routes through the real ``ShadowContext.observe`` so
    divergence stats and ``op_index`` ordering stay bit-identical to
    the interpreted engine.

    Learning holds strong references to wrappers (shadow mode has no
    refcount-sensitive machinery: no ``out=`` reuse, no init-copy
    elision), bounded by the chain cap and released at finalization.
    """

    _min_ops = _MIN_OPS_SHADOW

    __slots__ = (
        "mode_key", "_ctx", "_cb", "_n",
        "_shadow_cls", "_base_cls", "_taint_and_divs", "_shadow_new",
    )

    def __init__(self, profile, ctx, shadow_cls, base_cls,
                 taint_and_divs, shadow_new):
        self._ctx = ctx
        self._cb = ctx.cast_back
        self._n = ctx.n
        self._shadow_cls = shadow_cls
        self._base_cls = base_cls
        self._taint_and_divs = taint_and_divs
        self._shadow_new = shadow_new
        self.mode_key = ("shadow",) + tuple(np.dtype(d).str for d in ctx.dtypes)
        FuseTracer.__init__(self, profile)

    # -- matching ------------------------------------------------------------

    def offer(self, ufunc, inputs):
        m = self._active
        if m is not None:
            return self._advance(m, ufunc, inputs)
        regions = self._heads.get(ufunc)
        if regions is not None:
            return self._try_start(regions, ufunc, inputs)
        return None

    def _match_op(self, m, region, pos, operands):
        op = region.ops[pos]
        descs = op.descs
        if len(descs) != len(operands):
            return False
        for desc, x in zip(descs, operands):
            kind = desc[0]
            idx = desc[1]
            if kind == "T":
                if x is not m.W[idx]:
                    return False
            elif kind == "E":
                if region.ext_guards[idx][0] == "w":
                    bound = m.E[idx]
                    if bound is not None:
                        if x is not bound:
                            return False
                    elif not self._bind_wrapper(m, region, idx, x):
                        return False
                else:
                    bound = m.ER[idx]
                    if bound is not None:
                        if x is not bound[0]:
                            return False
                    elif not self._bind_raw(m, region, idx, x):
                        return False
            elif kind == "C":
                if not _scalar_equal(x, region.consts[idx]):
                    return False
            else:  # V
                if m.V[idx] is None:
                    if not _vartype_matches(region.var_types[idx], x):
                        return False
                    ctx = self._ctx
                    m.V[idx] = (x,) + tuple(
                        ctx.shadow_operand(x, k) for k in range(self._n)
                    )
                elif x is not m.V[idx][0] and not _scalar_equal(x, m.V[idx][0]):
                    return False
        return True

    def _prestart(self, region, operands):
        # shadow variant of the plain pre-filter: wrapper externals
        # check the ShadowArray type + reference dtype/shape, raw
        # externals the ndarray guard; crucially no shadow_operand
        # conversions happen here (those are bind-time side effects).
        descs = region.ops[0].descs
        if len(descs) != len(operands):
            return False
        for desc, x in zip(descs, operands):
            kind = desc[0]
            if kind == "E":
                guard = region.ext_guards[desc[1]]
                if guard[0] == "w":
                    if (
                        type(x) is not self._shadow_cls
                        or x._data.dtype != guard[1]
                        or x._data.shape != guard[2]
                    ):
                        return False
                elif (
                    type(x) is not np.ndarray
                    or x.dtype != guard[1]
                    or x.shape != guard[2]
                ):
                    return False
            elif kind == "C":
                if not _scalar_equal(x, region.consts[desc[1]]):
                    return False
            elif kind == "V":
                if not _vartype_matches(region.var_types[desc[1]], x):
                    return False
        return True

    def _bind_wrapper(self, m, region, idx, x) -> bool:
        guard = region.ext_guards[idx]  # ("w", dtype, shape, shadow dtypes)
        if type(x) is not self._shadow_cls:
            return False
        data = x._data
        shads = x._shadows
        if (
            data.dtype != guard[1]
            or data.shape != guard[2]
            or len(shads) != self._n
        ):
            return False
        for s, sdt in zip(shads, guard[3]):
            if s.dtype != sdt:
                return False
        m.E[idx] = x
        return True

    def _bind_raw(self, m, region, idx, x) -> bool:
        guard = region.ext_guards[idx]  # ("r", dtype, shape)
        if (
            type(x) is np.ndarray
            and x.dtype == guard[1]
            and x.shape == guard[2]
        ):
            # Convert once per activation exactly as shadow_operand
            # would per op (astype is deterministic, and no buffer can
            # mutate while the region is active).
            ctx = self._ctx
            m.ER[idx] = (x,) + tuple(
                ctx.shadow_operand(x, k) for k in range(self._n)
            )
            return True
        return False

    def _run_segment(self, m) -> bool:
        start, end, fn = m.region.segments[m.next_seg]
        m.next_seg += 1
        try:
            fn(self._cb, m.E, m.ER, m.V, m.T, m.S)
        except Exception:
            # Whole-segment abort *before* any hand-out: the interpreted
            # re-execution reproduces per-precision degradation exactly.
            return False
        return True

    def _handout(self, m, operands):
        region = m.region
        pos = m.pos
        d = region.ops[pos].delta
        self._profile.record_op_keyed(d[0], d[1], d[2], d[3], d[4])
        STATS.fused_ops += 1
        ctx = self._ctx
        taint, in_divs = self._taint_and_divs(ctx, operands)
        ref = m.T[pos]
        raw = m.S[pos]
        divs = ctx.observe(taint, ref, raw, in_divs)
        fixed = tuple(np.asarray(s) for s in raw)
        exact = not any(s is None for s in raw)
        wrapper = self._shadow_new(ctx, ref, self._profile, fixed, taint, divs, exact)
        m.W[pos] = wrapper
        pos += 1
        if pos == len(region.ops):
            if region.penalty:  # decay, not reset — see FuseTracer._handout
                region.penalty -= 1
            self._active = None
        else:
            m.pos = pos
            self._active = m
        return wrapper

    # -- learning ------------------------------------------------------------

    def note(self, ufunc, inputs, raw_result, out):
        if not self._learning:
            return
        if type(out) is not self._shadow_cls or out._data.dtype.kind != "f":
            self._finish_chain()
            return
        if len(inputs) not in (1, 2):
            self._finish_chain()
            return
        descs = []
        for x in inputs:
            d = self._learn_operand(x)
            if d is None:
                self._finish_chain()
                return
            descs.append(d)
        base_cls = self._base_cls
        raws = tuple(
            x._data if isinstance(x, base_cls) else x for x in inputs
        )
        self._push(ufunc, tuple(descs), raws, raw_result, out)

    def _learn_operand(self, x):
        if type(x) is self._shadow_cls:
            key = id(x)
            idx = self._temp_ids.get(key)
            if idx is not None and self._temp_refs[idx] is x:
                return ("T", idx)
            slot = self._ext_ids.get(key)
            if slot is not None and self._ext_refs[slot] is x:
                return ("E", slot)
            if len(x._shadows) != self._n:
                return None
            slot = len(self._ext_sigs)
            self._ext_ids[key] = slot
            self._ext_refs.append(x)
            self._ext_sigs.append((
                "w", x._data.dtype.str, x._data.shape,
                tuple(s.dtype.str for s in x._shadows),
            ))
            return ("E", slot)
        if isinstance(x, self._base_cls):
            return None  # a plain MPArray in a shadow run: bail out
        if type(x) is np.ndarray:
            key = id(x)
            slot = self._ext_ids.get(key)
            if slot is not None and self._ext_refs[slot] is x:
                return ("E", slot)
            slot = len(self._ext_sigs)
            self._ext_ids[key] = slot
            self._ext_refs.append(x)
            self._ext_sigs.append(("r", x.dtype.str, x.shape))
            return ("E", slot)
        t = type(x)
        if t is float or t is bool or t is int:
            return ("S", x)
        if isinstance(x, np.generic) and x.dtype.kind in "fiub":
            return ("S", x)
        return None

    def _remember_result(self, i, result) -> None:
        self._temp_ids[id(result)] = i
        self._temp_refs.append(result)

    def _n_shadow(self) -> int:
        return self._n

    @staticmethod
    def _worth_it(ops, spans) -> bool:
        # Every fused shadow op skips one wrapper dispatch, an errstate
        # enter/exit and the shadow-operand walk, even in 1-op segments.
        return True


def shadow_tracer(profile, ctx):
    """A tracer for one shadow workspace, or ``None`` when fusion is
    disabled or the reference recorder is active."""
    from repro.runtime import mparray as _mp

    if not fusion_enabled() or not _mp._FAST_MODE:
        return None
    from repro.shadow import engine as _engine

    tracer = ShadowFuseTracer(
        profile, ctx, _engine.ShadowArray, _mp.MPArray,
        _engine._taint_and_divs, _engine._shadow_new,
    )
    if not tracer._learning and not tracer._heads:
        return None  # inert: cooled down with no regions for this mode
    return tracer
