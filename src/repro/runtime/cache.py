"""Persistent on-disk evaluation cache.

Repeated harness runs and benchmark sweeps re-evaluate the very same
precision configurations over and over: the search algorithms are
deterministic, so a second ``mixpbench run`` repeats every execution
the first one already paid for.  :class:`EvaluationCache` stores the
result of each *fresh* evaluation as one JSON line under a cache
directory (``results/cache/`` by default) so later evaluators can
replay it without executing the program.

A cached record is only valid for the exact evaluation context that
produced it: program identity and input seed, quality metric and
threshold, machine model, timing methodology (runs per configuration,
measurement noise, modeled vs wall clock) and simulated build/run
costs.  All of those are folded into a *context fingerprint*; a cache
line whose fingerprint does not match is simply ignored.  Bumping
:data:`CACHE_SCHEMA_VERSION` (part of the fingerprint) invalidates
every existing cache in one stroke — the versioned-invalidation knob
for format changes.

Replayed evaluations are charged to the *simulated* analysis clock
exactly as fresh ones (same ``analysis_seconds``, same EV increment),
so SU/EV/AC tables are identical with and without the cache; only real
host time is saved.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Mapping

__all__ = ["EvaluationCache", "CACHE_SCHEMA_VERSION", "context_fingerprint"]

#: bump to invalidate all previously written caches
CACHE_SCHEMA_VERSION = 1


def context_fingerprint(**fields: Any) -> str:
    """Stable hash of an evaluation context.

    Any change to any field — program, seed, metric, threshold,
    machine, timing parameters, schema version — yields a different
    fingerprint and therefore a cold cache.
    """
    fields = dict(fields)
    fields["schema"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(fields, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


class EvaluationCache:
    """JSON-lines cache of evaluation records, one file per program.

    The store is append-only: lines are loaded once per (program,
    context) on first access, kept in memory, and new records are
    appended under a lock (single-line appends keep concurrent writers
    from corrupting each other).  Records are plain dictionaries — the
    evaluator owns the schema; the cache only keys and persists them.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._lock = threading.Lock()
        #: (program, context) -> {config_digest: record}
        self._loaded: dict[tuple[str, str], dict[str, dict]] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, program: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in program)
        return self.directory / f"{safe}.jsonl"

    def _table(self, program: str, context: str) -> dict[str, dict]:
        key = (program, context)
        table = self._loaded.get(key)
        if table is not None:
            return table
        table = {}
        path = self._path(program)
        if path.exists():
            for line in path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a crashed run; skip
                if entry.get("context") == context and "config" in entry:
                    table[str(entry["config"])] = entry.get("record", {})
        self._loaded[key] = table
        return table

    def get(self, program: str, context: str, config_digest: str) -> dict | None:
        """The cached record for one configuration, or ``None``."""
        with self._lock:
            record = self._table(program, context).get(config_digest)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(
        self,
        program: str,
        context: str,
        config_digest: str,
        record: Mapping[str, Any],
    ) -> None:
        """Persist one fresh-evaluation record."""
        entry = {
            "context": context,
            "config": config_digest,
            "record": dict(record),
        }
        line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            self._table(program, context)[config_digest] = dict(record)
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._path(program).open("a") as handle:
                handle.write(line + "\n")
        self.writes += 1

    def __len__(self) -> int:
        with self._lock:
            return sum(len(t) for t in self._loaded.values())
