"""Precision-agnostic allocation: the Workspace.

This is the Python analogue of the paper's runtime library
(``mp_malloc`` and friends, Listing 3): benchmarks never hard-code a
floating dtype.  Instead they declare every floating-point variable
through a :class:`Workspace`, which resolves the variable's precision
from the active :class:`~repro.core.types.PrecisionConfig`:

* ``ws.array("x", n)`` — the analogue of ``mp_malloc``: a heap array
  whose element type is whatever the configuration assigns to ``x``;
* ``ws.scalar("s", 3.0)`` — a typed local scalar (a C ``double s``);
* ``ws.param("p", p)`` — a typed function parameter: scalars are
  coerced to the parameter's configured precision on entry (the
  implicit cast C performs at a call site), arrays pass through
  unchanged (their type is pinned by the cluster constraint).

The workspace owns the execution's :class:`Profile` and tracks the
live array footprint that drives the machine model's cache tiering.
"""

from __future__ import annotations

import sys
from typing import Any, Mapping

import numpy as np

from repro.core.types import CustomFormat, Precision, PrecisionConfig
from repro.errors import MixPBenchError, UnknownVariableError
from repro.runtime import fuse as _fuse
from repro.runtime import mparray as _mparray
from repro.runtime.mparray import MPArray, QuantizedMPArray, unwrap
from repro.runtime.profiler import Profile
from repro.runtime.quantize import (
    QuantSpec,
    modeled_nbytes,
    quantize_array,
    quantize_scalar,
    spec_for,
)
from repro.runtime.rngcache import ReplayGenerator, RNGReplayCache

__all__ = ["Workspace"]

#: diagnostic counter: number of init-copy elisions performed (see
#: :meth:`Workspace.array`); read by tests, never reset automatically.
_ELISIONS = 0


class Workspace:
    """Runtime context for one benchmark execution.

    Parameters
    ----------
    config:
        Precision assignment for the program's variables.  Defaults to
        the all-double baseline.
    name_map:
        Mapping from the bare names used in ``ws.array("x", ...)``
        calls to the qualified variable uids (``"function.x"``) used in
        configurations.  Produced by the Typeforge scan; when absent,
        bare names are used directly.
    seed:
        Seed for the workspace RNG used by benchmarks to generate
        reproducible random inputs.
    strict:
        When true, looking up a variable that the name map does not
        know raises :class:`UnknownVariableError`; when false the bare
        name is used as the uid (handy for ad-hoc experimentation).
    rng_cache:
        Optional :class:`~repro.runtime.rngcache.RNGReplayCache`.  When
        provided, ``ws.rng`` replays the recorded deterministic draw
        stream instead of regenerating it — the same values, paid once
        per process instead of once per trial.
    """

    def __init__(
        self,
        config: PrecisionConfig | None = None,
        name_map: Mapping[str, str] | None = None,
        seed: int = 0,
        strict: bool = False,
        rng_cache: RNGReplayCache | None = None,
    ) -> None:
        self.config = config if config is not None else PrecisionConfig()
        # Kept by reference, not copied: one workspace is built per
        # trial and the Typeforge name map it receives is immutable in
        # practice; a defensive copy of a ~100-entry dict per trial is
        # measurable on the small kernels.
        self._name_map: Mapping[str, str] = name_map if name_map is not None else {}
        self.profile = Profile()
        # Per-execution trace-fusion recorder (None when fusion is off
        # or the runtime is in reference mode — reference recording
        # must never take a compiled path).
        self.profile.fuse = _fuse.plain_tracer(self.profile)
        if rng_cache is not None:
            self.rng: Any = ReplayGenerator(seed, rng_cache)
        else:
            self.rng = np.random.default_rng(seed)
        self._arrays: dict[str, MPArray] = {}
        self._strict = strict
        self._dtypes: dict[str, np.dtype] = {}
        # Emulated-format support.  ``_has_custom`` is the single gate:
        # when false (every pre-existing configuration) none of the
        # quantisation code below runs and declarations take the exact
        # pre-format path.
        self._seed = seed
        self._has_custom = self.config.uses_custom_formats()
        self._qspecs: dict[str, QuantSpec | None] = {}
        #: modeled (emulated-width) nbytes per live array, kept only for
        #: arrays whose modeled width differs from storage
        self._modeled: dict[str, int] = {}

    # -- name resolution ---------------------------------------------------
    def resolve(self, name: str) -> str:
        """Qualified uid for a bare declaration name."""
        if name in self._name_map:
            return self._name_map[name]
        if self._strict:
            raise UnknownVariableError(
                f"variable {name!r} is not declared by this program"
            )
        return name

    def precision_of(self, name: str) -> Precision:
        return self.config.precision_of(self.resolve(name))

    def dtype_of(self, name: str) -> np.dtype:
        # Hot path: every ws.array/scalar/param call resolves a dtype,
        # and the (name -> dtype) binding is fixed for the lifetime of
        # a workspace, so resolve each name once.
        try:
            return self._dtypes[name]
        except KeyError:
            dtype = self._dtypes[name] = self.precision_of(name).dtype
            return dtype

    # -- declarations --------------------------------------------------------
    def array(
        self,
        name: str,
        shape: int | tuple[int, ...] | None = None,
        init: Any = None,
        fill: float | None = None,
    ) -> MPArray:
        """Declare and allocate a floating array variable.

        Exactly one of ``shape`` (uninitialised/filled allocation) or
        ``init`` (copy-convert existing data, like ``mp_fread``) must
        be provided.
        """
        dtype = self.dtype_of(name)
        if (shape is None) == (init is None):
            raise ValueError("provide exactly one of shape= or init=")
        # A declaration may adopt (elide) or convert a traced buffer,
        # after which the tracer's identity assumptions are void: end
        # any active fused region and learning chain first.  This also
        # releases the tracer's strong temp refs so the elision
        # refcount tests below see the true counts.
        tracer = self.profile.fuse
        if tracer is not None:
            tracer.foreign()
        if init is not None:
            # Initialisation happens in the variable's own type (a C
            # kernel writes `x[i] = (float)f(i)` directly), so the
            # conversion is not charged as a runtime cast; file-driven
            # conversions go through mp_fread, which does charge it.
            #
            # When ``init`` is a provably-dead temporary of the right
            # dtype — an expression result nothing else references —
            # the defensive copy is elided and the temporary's buffer
            # adopted outright, the Python analogue of NumPy's own
            # temporary elision (a C kernel writing `x[i] = f(i)`
            # allocates once, not twice).  The refcount thresholds are
            # exact for a direct ``ws.array(..., init=<expression>)``
            # call; anything bound to a name, viewing other storage,
            # read-only (the RNG replay and mp_fread caches), or held
            # by a debugger scores higher and takes the copy, so a
            # missed elision is only ever a missed optimisation.
            global _ELISIONS
            if type(init) is MPArray:
                source = init._data
                if (
                    _mparray._FAST_MODE
                    and source.dtype == dtype
                    and source.base is None
                    and source.flags.writeable
                    and sys.getrefcount(init) == 2
                    and sys.getrefcount(source) == 3
                ):
                    data = source
                    _ELISIONS += 1
                else:
                    data = source.astype(dtype)
            elif type(init) is np.ndarray:
                if (
                    _mparray._FAST_MODE
                    and init.dtype == dtype
                    and init.base is None
                    and init.flags.writeable
                    and sys.getrefcount(init) == 2
                ):
                    data = init
                    _ELISIONS += 1
                else:
                    data = init.astype(dtype)
            else:
                data = np.asarray(unwrap(init)).astype(dtype)
        else:
            if fill is not None:
                data = np.full(shape, fill, dtype=dtype)
            else:
                data = np.zeros(shape, dtype=dtype)
        profile = self.profile
        if self._has_custom:
            return self._finish_custom_array(name, data, profile)
        arr = MPArray.__new__(MPArray)
        arr._data = data
        arr._profile = profile
        previous = self._arrays.get(name)
        if previous is not None:
            profile.track_free(previous.nbytes)
        self._arrays[name] = arr
        profile.track_alloc(data.nbytes)
        return arr

    def qspec_of(self, name: str) -> QuantSpec | None:
        """Quantisation spec for a bare name; ``None`` for built-in
        precisions and storage-exact formats (e8m23/e11m52)."""
        try:
            return self._qspecs[name]
        except KeyError:
            uid = self.resolve(name)
            spec = self._qspecs[name] = spec_for(
                self.config.precision_of(uid), self._seed, uid
            )
            return spec

    def _finish_custom_array(self, name: str, data: np.ndarray, profile: Profile) -> MPArray:
        """Declaration tail for workspaces with emulated formats live:
        quantise the initial contents, wrap stores, and account the
        modeled (emulated-width) footprint."""
        spec = self.qspec_of(name)
        if spec is not None:
            quantize_array(data, spec)
            arr = MPArray.__new__(QuantizedMPArray)
            arr._data = data
            arr._profile = profile
            arr._qspec = spec
        else:
            arr = MPArray.__new__(MPArray)
            arr._data = data
            arr._profile = profile
        previous = self._arrays.get(name)
        if previous is not None:
            profile.track_free(previous.nbytes, self._modeled.pop(name, None))
        precision = self.config.precision_of(self.resolve(name))
        if isinstance(precision, CustomFormat):
            modeled = modeled_nbytes(precision, data.size)
        else:
            modeled = data.nbytes
        self._arrays[name] = arr
        profile.track_alloc(data.nbytes, modeled)
        if modeled != data.nbytes:
            self._modeled[name] = modeled
        return arr

    def scalar(self, name: str, value: float) -> np.generic:
        """Declare a typed scalar variable (a C local declaration).

        The returned NumPy scalar behaves like a C variable of the
        configured type under NEP-50 promotion: a double scalar forces
        double math, a float scalar keeps float expressions narrow.
        """
        dtype = self.dtype_of(name)
        result = dtype.type(unwrap(value))
        if self._has_custom:
            spec = self.qspec_of(name)
            if spec is not None:
                result = quantize_scalar(result, spec)
        return result

    def param(self, name: str, value: Any) -> Any:
        """Declare a typed function parameter.

        Scalar arguments are coerced to the parameter's precision (the
        implicit cast at a C call site).  Array arguments must already
        match: the type-dependence clusters guarantee that any
        compilable configuration gives an array argument and its bound
        parameter the same precision, so a mismatch here means the
        evaluator admitted a non-compilable configuration.
        """
        dtype = self.dtype_of(name)
        if isinstance(value, MPArray):
            if value.dtype != dtype:
                raise MixPBenchError(
                    f"array argument bound to parameter {name!r} has dtype "
                    f"{value.dtype}, expected {dtype}; this configuration "
                    "should have been rejected as non-compilable"
                )
            return value
        result = dtype.type(unwrap(value))
        if self._has_custom:
            spec = self.qspec_of(name)
            if spec is not None:
                result = quantize_scalar(result, spec)
        return result

    # -- bookkeeping -----------------------------------------------------------
    def get(self, name: str) -> MPArray:
        """A previously declared array, by bare name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise UnknownVariableError(f"no array named {name!r} allocated") from None

    def release(self, name: str) -> None:
        """Free a named array (drops it from the modeled footprint)."""
        arr = self._arrays.pop(name, None)
        if arr is not None:
            self.profile.track_free(arr.nbytes, self._modeled.pop(name, None))

    @property
    def live_bytes(self) -> int:
        """Current modeled footprint of named arrays."""
        return sum(
            self._modeled.get(name, arr.nbytes)
            for name, arr in self._arrays.items()
        )

    def declared_arrays(self) -> tuple[str, ...]:
        return tuple(self._arrays)
