"""Operation-level profiling of benchmark executions.

The paper measures wall-clock time on a Xeon testbed.  A pure-Python
re-implementation cannot reproduce C performance, so this package takes
the route documented in DESIGN.md: every NumPy operation executed on a
tracked array (:class:`repro.runtime.mparray.MPArray`) is recorded in a
:class:`Profile`, and a roofline :class:`repro.runtime.machine.MachineModel`
converts the profile into a modeled runtime.

A profile aggregates element counts and memory traffic per *(operation
class, compute dtype)* bucket, plus global counters for casts, gathers
(indexed accesses) and per-call overheads.
"""

from __future__ import annotations

import enum

__all__ = ["OpClass", "Profile", "UFUNC_OPCLASS", "opclass_for_ufunc"]


class OpClass(enum.Enum):
    """Coarse cost classes for floating-point and integer operations.

    The classes correspond to the throughput tiers of a modeled CPU:

    * ``CHEAP`` — add/sub/mul/fma/compare/min/max: fully pipelined SIMD
      ops whose throughput doubles when the element width halves.
    * ``MEDIUM`` — divide and square root: partially pipelined, still
      benefit from narrower elements.
    * ``TRANS`` — transcendental functions (exp, log, pow, trig, erf):
      implemented by libm at effectively dtype-independent latency.
    * ``MOVE`` — copies, fills, selects: bandwidth-bound data movement.
    * ``INT`` — integer arithmetic: unaffected by floating precision.
    """

    CHEAP = "cheap"
    MEDIUM = "medium"
    TRANS = "trans"
    MOVE = "move"
    INT = "int"

    # Enum's default __hash__ re-hashes the member *name* string on
    # every dict probe — and every recorded op probes the ops dict with
    # an (OpClass, dtype) key.  Members are singletons, so the identity
    # hash is equivalent and C-fast.
    __hash__ = object.__hash__


_CHEAP_UFUNCS = {
    "add", "subtract", "multiply", "negative", "positive", "absolute",
    "fabs", "minimum", "maximum", "fmin", "fmax", "greater", "less",
    "greater_equal", "less_equal", "equal", "not_equal", "sign",
    "floor", "ceil", "trunc", "rint", "isnan", "isinf", "isfinite",
    "logical_and", "logical_or", "logical_not", "logical_xor", "square",
    "conjugate", "heaviside", "copysign", "nextafter", "spacing", "signbit",
    "fmod", "mod", "remainder", "clip",
}
_MEDIUM_UFUNCS = {
    "divide", "true_divide", "floor_divide", "sqrt", "reciprocal",
    "cbrt", "hypot",
}
_TRANS_UFUNCS = {
    "exp", "exp2", "expm1", "log", "log2", "log10", "log1p", "power",
    "float_power", "sin", "cos", "tan", "arcsin", "arccos", "arctan",
    "arctan2", "sinh", "cosh", "tanh", "arcsinh", "arccosh", "arctanh",
    "erf", "erfc", "logaddexp", "logaddexp2", "deg2rad", "rad2deg",
}

UFUNC_OPCLASS: dict[str, OpClass] = {}
UFUNC_OPCLASS.update({name: OpClass.CHEAP for name in _CHEAP_UFUNCS})
UFUNC_OPCLASS.update({name: OpClass.MEDIUM for name in _MEDIUM_UFUNCS})
UFUNC_OPCLASS.update({name: OpClass.TRANS for name in _TRANS_UFUNCS})


def opclass_for_ufunc(name: str, compute_kind: str) -> OpClass:
    """Cost class for a ufunc by name, given the compute dtype kind.

    Integer computations are classed ``INT`` whatever the ufunc,
    because the machine model treats integer throughput as independent
    of the floating-point precision configuration.
    """
    if compute_kind in ("i", "u", "b"):
        return OpClass.INT
    return UFUNC_OPCLASS.get(name, OpClass.CHEAP)


class Profile:
    """Aggregated operation counts for one benchmark execution.

    All counters are plain floats/ints so profiles stay cheap to merge;
    ``ops`` maps ``(OpClass, dtype_str)`` to element-operation counts.

    Recording sits on the instrumentation hot path — one call per NumPy
    operation of every trial — so the class is slotted and the record
    methods are straight-line dict/float accumulation with no argument
    massaging; all classification work (op class, dtype naming, cast
    detection) happens in the caller, once per unique operation
    signature (see :mod:`repro.runtime.mparray`).
    """

    __slots__ = (
        "ops", "bytes_read", "bytes_written", "cast_elements",
        "gather_elements", "ufunc_calls", "io_bytes", "peak_footprint",
        "alloc_storage_bytes", "alloc_modeled_bytes",
        "_live_footprint", "fuse",
    )

    def __init__(
        self,
        ops: dict[tuple[OpClass, str], float] | None = None,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        cast_elements: float = 0.0,
        gather_elements: float = 0.0,
        ufunc_calls: int = 0,
        io_bytes: float = 0.0,
        peak_footprint: int = 0,
        alloc_storage_bytes: float = 0.0,
        alloc_modeled_bytes: float = 0.0,
    ) -> None:
        self.ops = {} if ops is None else dict(ops)
        self.bytes_read = bytes_read
        self.bytes_written = bytes_written
        self.cast_elements = cast_elements
        self.gather_elements = gather_elements
        self.ufunc_calls = ufunc_calls
        self.io_bytes = io_bytes
        self.peak_footprint = peak_footprint
        # Cumulative workspace allocations: the physical (storage-dtype)
        # bytes and the emulated-width bytes.  They differ only when a
        # CustomFormat narrower than its storage dtype is live; their
        # ratio is the machine model's traffic discount.
        self.alloc_storage_bytes = alloc_storage_bytes
        self.alloc_modeled_bytes = alloc_modeled_bytes
        self._live_footprint = 0
        # Optional trace-fusion recorder (repro.runtime.fuse).  The
        # workspace installs one per execution; ``None`` means every op
        # runs interpreted.  Not a counter: excluded from equality and
        # from pickling (tracers hold compiled code and weakrefs).
        self.fuse = None

    def __getstate__(self) -> dict:
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "fuse"
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self.fuse = None

    def __repr__(self) -> str:
        return (
            f"Profile(ops={self.ops!r}, bytes_read={self.bytes_read!r}, "
            f"bytes_written={self.bytes_written!r}, "
            f"cast_elements={self.cast_elements!r}, "
            f"gather_elements={self.gather_elements!r}, "
            f"ufunc_calls={self.ufunc_calls!r}, io_bytes={self.io_bytes!r}, "
            f"peak_footprint={self.peak_footprint!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return (
            self.ops == other.ops
            and self.bytes_read == other.bytes_read
            and self.bytes_written == other.bytes_written
            and self.cast_elements == other.cast_elements
            and self.gather_elements == other.gather_elements
            and self.ufunc_calls == other.ufunc_calls
            and self.io_bytes == other.io_bytes
            and self.peak_footprint == other.peak_footprint
            and self.alloc_storage_bytes == other.alloc_storage_bytes
            and self.alloc_modeled_bytes == other.alloc_modeled_bytes
        )

    def record_op(
        self,
        opclass: OpClass,
        dtype: str,
        n: float,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        casts: float = 0.0,
    ) -> None:
        """Record ``n`` element-operations of class ``opclass``."""
        key = (opclass, dtype)
        self.ops[key] = self.ops.get(key, 0.0) + n
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.cast_elements += casts
        self.ufunc_calls += 1

    def record_op_keyed(
        self,
        key: tuple[OpClass, str],
        n: float,
        bytes_read: float,
        bytes_written: float,
        casts: float,
    ) -> None:
        """Fast-path :meth:`record_op`: the ``(opclass, dtype)`` bucket
        key is precomputed (and interned) by the caller's signature
        cache, so one dict accumulation replaces tuple construction and
        dtype-name formatting.  Counter semantics are identical."""
        ops = self.ops
        ops[key] = ops.get(key, 0.0) + n
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.cast_elements += casts
        self.ufunc_calls += 1

    def record_gather(self, n: float, nbytes: float) -> None:
        """Record an indexed (gather/scatter) access of ``n`` elements."""
        self.gather_elements += n
        self.bytes_read += nbytes
        self.ufunc_calls += 1

    def record_cast(self, n: float) -> None:
        """Record an explicit element conversion between precisions."""
        self.cast_elements += n

    def record_io(self, nbytes: float) -> None:
        """Record file I/O traffic (informational; not timed)."""
        self.io_bytes += nbytes

    # -- footprint tracking (driven by the Workspace) ---------------------
    def track_alloc(self, nbytes: int, modeled: int | None = None) -> None:
        """Record an allocation.  ``modeled`` is the emulated-width
        footprint when the variable's format is narrower than its
        storage dtype; it drives the cache-tier footprint while
        ``nbytes`` stays the physical allocation size."""
        if modeled is None:
            modeled = nbytes
        self._live_footprint += modeled
        if self._live_footprint > self.peak_footprint:
            self.peak_footprint = self._live_footprint
        self.alloc_storage_bytes += nbytes
        self.alloc_modeled_bytes += modeled

    def track_free(self, nbytes: int, modeled: int | None = None) -> None:
        if modeled is None:
            modeled = nbytes
        self._live_footprint = max(0, self._live_footprint - modeled)

    def traffic_scale(self) -> float:
        """Ratio of emulated to physical allocation width, applied by
        the machine model to memory traffic.  Exactly 1.0 unless a
        narrower-than-storage CustomFormat allocated memory."""
        if (
            self.alloc_modeled_bytes == self.alloc_storage_bytes
            or self.alloc_storage_bytes <= 0
        ):
            return 1.0
        return self.alloc_modeled_bytes / self.alloc_storage_bytes

    # -- combination -------------------------------------------------------
    def merge(self, other: "Profile") -> None:
        """Accumulate ``other`` into this profile in place."""
        for key, count in other.ops.items():
            self.ops[key] = self.ops.get(key, 0.0) + count
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.cast_elements += other.cast_elements
        self.gather_elements += other.gather_elements
        self.ufunc_calls += other.ufunc_calls
        self.io_bytes += other.io_bytes
        self.peak_footprint = max(self.peak_footprint, other.peak_footprint)
        self.alloc_storage_bytes += other.alloc_storage_bytes
        self.alloc_modeled_bytes += other.alloc_modeled_bytes

    def total_flops(self) -> float:
        """Total floating-point element operations (all classes but INT)."""
        return sum(
            count for (opclass, _dtype), count in self.ops.items()
            if opclass is not OpClass.INT
        )

    def summary(self) -> dict:
        """A JSON-friendly digest of the profile."""
        return {
            "ops": {
                f"{opclass.value}/{dtype}": count
                for (opclass, dtype), count in sorted(
                    self.ops.items(), key=lambda item: (item[0][0].value, item[0][1])
                )
            },
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "cast_elements": self.cast_elements,
            "gather_elements": self.gather_elements,
            "ufunc_calls": self.ufunc_calls,
            "io_bytes": self.io_bytes,
            "peak_footprint": self.peak_footprint,
            # Only surfaced when an emulated format actually narrowed an
            # allocation, so summaries of ordinary runs (and of
            # storage-exact formats like e8m23) stay byte-identical to
            # the pre-format era.
            **(
                {
                    "alloc_storage_bytes": self.alloc_storage_bytes,
                    "alloc_modeled_bytes": self.alloc_modeled_bytes,
                }
                if self.alloc_modeled_bytes != self.alloc_storage_bytes
                else {}
            ),
        }
