"""Roofline machine model: converts an operation profile to a runtime.

The paper measures speedups on an Intel Xeon E5-2670.  This module
models such a node analytically so that the *mechanisms* behind the
paper's observed speedups are reproduced deterministically:

* SIMD width: cheap/medium float ops double their throughput when the
  element width halves (the vectorisation benefit the paper cites).
* Transcendentals: libm latency is effectively dtype-independent, so
  exp/log-heavy codes (Blackscholes) gain almost nothing from fp32.
* Memory hierarchy: effective bandwidth depends on whether the working
  set fits a cache level, so halving array footprints can produce
  super-linear speedups (the paper's LavaMD observation).
* Casts: precision boundaries inside an expression cost conversions,
  so lowering only part of a cluster-connected data path can make the
  program *slower* (the paper's Listing-1 discussion and the Hotspot
  literal effect).
* Gathers: indirect accesses (sparse matrices, unstructured meshes)
  are latency-bound and dtype-independent, which is why HPCCG barely
  speeds up.

Times produced by the model are *modeled seconds*; they are compared
against each other (speedups) and charged against the simulated
24-hour search budget, never against the host's wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.profiler import OpClass, Profile

__all__ = [
    "CacheLevel", "MachineModel", "DEFAULT_MACHINE",
    "WIDE_VECTOR_MACHINE", "HBM_ACCELERATOR_MACHINE", "MACHINE_PRESETS",
]


@dataclass(frozen=True)
class CacheLevel:
    """A level of the memory hierarchy: capacity and sustained bandwidth."""

    capacity_bytes: int
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("cache capacity and bandwidth must be positive")


# Element throughputs (elements/second) per (op class, dtype).  The fp32
# entries for CHEAP/MEDIUM are twice the fp64 ones: a vector unit of
# fixed bit width retires twice as many narrow lanes per cycle.
_DEFAULT_THROUGHPUT: dict[OpClass, dict[str, float]] = {
    OpClass.CHEAP: {"float16": 3.2e10, "float32": 1.6e10, "float64": 8.0e9},
    OpClass.MEDIUM: {"float16": 8.0e9, "float32": 4.0e9, "float64": 2.0e9},
    OpClass.TRANS: {"float16": 2.5e8, "float32": 2.5e8, "float64": 2.5e8},
    OpClass.MOVE: {},   # bandwidth-bound: no compute term
    OpClass.INT: {},    # dtype-independent default below
}

_INT_THROUGHPUT = 1.6e10


@dataclass(frozen=True)
class MachineModel:
    """An analytic single-node performance model (roofline style).

    ``time(profile)`` returns modeled seconds for an execution whose
    operation mix is described by ``profile``:

    ``time = call_overhead · calls + casts/cast_tp + gathers/gather_tp
    + Σ_buckets max(ops/throughput, bytes/bandwidth(footprint))``

    where the per-bucket memory traffic is apportioned from the total
    traffic by each bucket's share of element operations.
    """

    name: str = "modeled-xeon"
    throughput: dict[OpClass, dict[str, float]] = field(
        default_factory=lambda: {
            opclass: dict(rates) for opclass, rates in _DEFAULT_THROUGHPUT.items()
        }
    )
    int_throughput: float = _INT_THROUGHPUT
    cache_levels: tuple[CacheLevel, ...] = (
        CacheLevel(2 * 1024 * 1024, 2.0e11),      # private L2
        CacheLevel(12 * 1024 * 1024, 2.8e10),     # shared LLC
    )
    dram_bandwidth: float = 1.2e10
    cast_throughput: float = 8.0e9
    gather_throughput: float = 4.5e8
    call_overhead_s: float = 1.0e-6

    def bandwidth(self, footprint_bytes: float) -> float:
        """Sustained bandwidth for a given resident working set."""
        for level in self.cache_levels:
            if footprint_bytes <= level.capacity_bytes:
                return level.bandwidth_bytes_per_s
        return self.dram_bandwidth

    def _compute_rate(self, opclass: OpClass, dtype: str) -> float:
        if opclass is OpClass.INT:
            return self.int_throughput
        if opclass is OpClass.MOVE:
            return float("inf")
        rates = self.throughput.get(opclass, {})
        if dtype in rates:
            return rates[dtype]
        # Unknown dtype (e.g. an integer result routed to a float class):
        # fall back to the slowest known rate for the class, or INT rate.
        if rates:
            return min(rates.values())
        return self.int_throughput

    def time(self, profile: Profile) -> float:
        """Modeled runtime in seconds for ``profile``."""
        bw = self.bandwidth(max(profile.peak_footprint, 1))
        total_ops = sum(profile.ops.values())
        total_bytes = profile.bytes_read + profile.bytes_written
        # Emulated sub-storage-width formats move proportionally fewer
        # bytes per element; the scale is exactly 1.0 (and the multiply
        # skipped, keeping times bit-identical) for ordinary runs.
        scale = profile.traffic_scale()
        if scale != 1.0:
            total_bytes *= scale
        elapsed = 0.0
        for (opclass, dtype), n in profile.ops.items():
            compute = n / self._compute_rate(opclass, dtype)
            # Apportion the profile's memory traffic to this bucket by
            # its share of element operations; roofline within bucket.
            share = n / total_ops if total_ops else 0.0
            memory = (total_bytes * share) / bw
            elapsed += max(compute, memory)
        elapsed += profile.cast_elements / self.cast_throughput
        elapsed += profile.gather_elements / self.gather_throughput
        elapsed += profile.ufunc_calls * self.call_overhead_s
        return elapsed

    def breakdown(self, profile: Profile) -> dict[str, float]:
        """Per-component modeled time, for reporting and calibration."""
        bw = self.bandwidth(max(profile.peak_footprint, 1))
        total_ops = sum(profile.ops.values())
        total_bytes = profile.bytes_read + profile.bytes_written
        scale = profile.traffic_scale()
        if scale != 1.0:
            total_bytes *= scale
        compute_bound = 0.0
        memory_bound = 0.0
        for (opclass, dtype), n in profile.ops.items():
            compute = n / self._compute_rate(opclass, dtype)
            share = n / total_ops if total_ops else 0.0
            memory = (total_bytes * share) / bw
            if compute >= memory:
                compute_bound += compute
            else:
                memory_bound += memory
        return {
            "compute": compute_bound,
            "memory": memory_bound,
            "casts": profile.cast_elements / self.cast_throughput,
            "gathers": profile.gather_elements / self.gather_throughput,
            "call_overhead": profile.ufunc_calls * self.call_overhead_s,
            "bandwidth": bw,
        }


DEFAULT_MACHINE = MachineModel()

#: A wider-vector machine (AVX-512-class): double the cheap/medium
#: arithmetic rates, same memory system.  Compute-bound codes finish
#: sooner, so precision tuning's *relative* value shifts toward the
#: memory-bound programs.
WIDE_VECTOR_MACHINE = MachineModel(
    name="modeled-wide-vector",
    throughput={
        OpClass.CHEAP: {"float16": 6.4e10, "float32": 3.2e10, "float64": 1.6e10},
        OpClass.MEDIUM: {"float16": 1.6e10, "float32": 8.0e9, "float64": 4.0e9},
        OpClass.TRANS: {"float16": 2.5e8, "float32": 2.5e8, "float64": 2.5e8},
        OpClass.MOVE: {},
        OpClass.INT: {},
    },
    int_throughput=3.2e10,
)

#: An HBM-accelerator-like machine: an order of magnitude more
#: bandwidth and vectorised transcendentals that *do* speed up at
#: narrow widths.  Cache-residency effects (the paper's LavaMD story)
#: largely disappear; transcendental-bound codes start benefiting.
HBM_ACCELERATOR_MACHINE = MachineModel(
    name="modeled-hbm-accelerator",
    throughput={
        OpClass.CHEAP: {"float16": 1.28e11, "float32": 6.4e10, "float64": 3.2e10},
        OpClass.MEDIUM: {"float16": 3.2e10, "float32": 1.6e10, "float64": 8.0e9},
        OpClass.TRANS: {"float16": 8.0e9, "float32": 4.0e9, "float64": 2.0e9},
        OpClass.MOVE: {},
        OpClass.INT: {},
    },
    int_throughput=6.4e10,
    cache_levels=(CacheLevel(32 * 1024 * 1024, 8.0e11),),
    dram_bandwidth=4.0e11,
    cast_throughput=3.2e10,
    gather_throughput=2.0e9,
    call_overhead_s=5.0e-6,  # kernel-launch-like cost
)

#: Named presets for CLIs and experiments.
MACHINE_PRESETS: dict[str, MachineModel] = {
    "xeon": DEFAULT_MACHINE,
    "wide-vector": WIDE_VECTOR_MACHINE,
    "hbm-accelerator": HBM_ACCELERATOR_MACHINE,
}
