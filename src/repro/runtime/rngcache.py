"""Deterministic RNG replay: pay input generation once per process.

Benchmarks draw their random inputs through ``ws.rng`` with a fixed
seed, so every trial of a search regenerates the *same* arrays — for
``lavamd`` four 150k-element draws per trial, for the Table-I kernels
their entire input set.  :class:`ReplayGenerator` makes the second and
later executions skip the generation: the first execution records the
draw stream (method, arguments, result) into a shared
:class:`RNGReplayCache`, and subsequent executions replay the recorded
results as long as their call sequence matches.

Replay is exact by construction — a NumPy ``Generator`` with a fixed
seed is a pure function of its call sequence, so the recorded result
*is* what a fresh generator would produce.  Divergence is handled, not
assumed away: on the first call that does not match the recorded
stream (different arguments, extra draws, unhashable arguments), the
generator materialises a real ``Generator``, fast-forwards it by
re-issuing the recorded prefix, and continues live.  A diverging
sequence therefore costs one replayed prefix, never a wrong number.

Replayed arrays are *read-only views* of the cached ones — handing out
the recorded buffer without a per-draw copy is what makes replay
essentially free.  The suite's benchmarks only ever read their draws
(they feed expressions or ``ws.array(init=...)``, which copies into
the variable's own storage); code that does mutate a draw in place
gets a loud ``ValueError``, never silent corruption, and can be
switched to an explicit ``.copy()``.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

__all__ = ["RNGReplayCache", "ReplayGenerator"]


class RNGReplayCache:
    """The recorded draw stream of one (benchmark, seed) pair.

    ``calls`` is an append-only list of ``(key, result)`` entries where
    ``key = (method, args, sorted kwargs)``.  A lock serialises
    appends so concurrent thread-executor trials cannot interleave
    their recordings; since every writer computes identical values from
    the same seed, whichever append wins stores the right entry.
    """

    __slots__ = ("calls", "lock")

    def __init__(self) -> None:
        self.calls: list[tuple[tuple, Any]] = []
        self.lock = threading.Lock()


class ReplayGenerator:
    """A ``numpy.random.Generator`` stand-in that replays a recorded
    deterministic draw stream and falls back to live generation on any
    divergence.  Only the methods the suite's benchmarks use are
    proxied explicitly; anything else resolves through
    ``__getattr__`` to the live generator (forcing fallback mode)."""

    __slots__ = ("_seed", "_cache", "_rng", "_pos", "_extend")

    def __init__(self, seed: int, cache: RNGReplayCache) -> None:
        self._seed = seed
        self._cache = cache
        self._rng: np.random.Generator | None = None
        self._pos = 0
        self._extend = True

    # -- proxied draw methods ---------------------------------------------
    def random(self, *args, **kwargs):
        return self._draw("random", args, kwargs)

    def standard_normal(self, *args, **kwargs):
        return self._draw("standard_normal", args, kwargs)

    def normal(self, *args, **kwargs):
        return self._draw("normal", args, kwargs)

    def uniform(self, *args, **kwargs):
        return self._draw("uniform", args, kwargs)

    def integers(self, *args, **kwargs):
        return self._draw("integers", args, kwargs)

    def exponential(self, *args, **kwargs):
        return self._draw("exponential", args, kwargs)

    def __getattr__(self, name: str):
        # Unproxied attribute: hand the caller the live generator's
        # attribute.  External calls can mutate state invisibly, so
        # stop tracking the recorded stream from here on.
        rng = self._materialise()
        self._pos = -1
        self._extend = False
        return getattr(rng, name)

    # -- machinery ---------------------------------------------------------
    def _materialise(self) -> np.random.Generator:
        """The real generator, fast-forwarded through every draw this
        execution has already consumed (replayed or recorded)."""
        if self._rng is None:
            rng = np.random.default_rng(self._seed)
            for key, _result in self._cache.calls[: self._pos]:
                method, args, kwargs = key
                getattr(rng, method)(*args, **dict(kwargs))
            self._rng = rng
        return self._rng

    def _draw(self, method: str, args: tuple, kwargs: dict):
        if self._pos == -1:  # permanently live
            return getattr(self._rng, method)(*args, **kwargs)
        try:
            key = (method, args, tuple(sorted(kwargs.items())))
            hash(key)
        except TypeError:  # array-valued argument etc.: uncacheable
            rng = self._materialise()
            self._pos = -1
            self._extend = False
            return getattr(rng, method)(*args, **kwargs)
        calls = self._cache.calls
        pos = self._pos
        if self._rng is None and pos < len(calls) and calls[pos][0] == key:
            self._pos = pos + 1
            result = calls[pos][1]
            # Read-only view of the recorded draw: the base array is
            # itself non-writeable, so the flag cannot be flipped back.
            return result.view() if isinstance(result, np.ndarray) else result
        rng = self._materialise()
        result = getattr(rng, method)(*args, **kwargs)
        if pos < len(calls):
            # Diverged from the recorded stream mid-way: keep the
            # recorded prefix for other executions, go live here.
            self._pos = -1
            self._extend = False
        else:
            if self._extend:
                if isinstance(result, np.ndarray):
                    stored = result.copy()
                    stored.flags.writeable = False
                else:
                    stored = result
                with self._cache.lock:
                    if len(calls) == pos:
                        calls.append((key, stored))
            self._pos = pos + 1
        return result
