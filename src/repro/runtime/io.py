"""Precision-agnostic binary I/O: ``mp_fread`` / ``mp_fwrite`` analogues.

The paper's runtime library (Listing 3) lets a benchmark read and write
binary files whose *stored* element type is fixed (usually double)
while the in-memory representation follows the active precision
configuration; the library performs any conversion.  These functions do
the same for NumPy: files always hold a declared on-disk precision, and
reads/writes convert to/from the configured in-memory dtype.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.core.types import Precision
from repro.errors import MixPBenchError
from repro.runtime.memory import Workspace
from repro.runtime.mparray import MPArray, unwrap

__all__ = ["mp_fread", "mp_fwrite", "write_typed", "read_typed"]


def write_typed(path: str | Path, data: Any, stored: Precision = Precision.DOUBLE) -> int:
    """Write ``data`` to ``path`` as raw binary in the ``stored`` format.

    Returns the number of bytes written.  This is the plain helper used
    by input generators; benchmarks should use :func:`mp_fwrite`, which
    also records traffic in the execution profile.
    """
    raw = np.ascontiguousarray(np.asarray(unwrap(data)), dtype=stored.dtype)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    raw.tofile(path)
    return raw.nbytes


def read_typed(path: str | Path, stored: Precision = Precision.DOUBLE, count: int = -1) -> np.ndarray:
    """Read a raw binary file written by :func:`write_typed`."""
    path = Path(path)
    if not path.exists():
        raise MixPBenchError(f"input file not found: {path}")
    return np.fromfile(path, dtype=stored.dtype, count=count)


#: (path, stored, count, mtime_ns, size) -> file contents.  Benchmarks
#: re-read the same generated input file every trial; the cache turns
#: that into one read per process.  The stat fingerprint invalidates
#: the entry the moment the file is rewritten.  Entries are never
#: handed out for mutation: :func:`mp_fread` immediately copy-converts
#: into the workspace array.
_FREAD_CACHE: dict[tuple, np.ndarray] = {}
_FREAD_CACHE_MAX = 32


def _read_typed_cached(path: Path, stored: Precision, count: int) -> np.ndarray:
    try:
        stat = path.stat()
    except OSError:
        raise MixPBenchError(f"input file not found: {path}") from None
    key = (str(path), stored.value, count, stat.st_mtime_ns, stat.st_size)
    cached = _FREAD_CACHE.get(key)
    if cached is None:
        if len(_FREAD_CACHE) >= _FREAD_CACHE_MAX:
            _FREAD_CACHE.pop(next(iter(_FREAD_CACHE)))
        cached = read_typed(path, stored=stored, count=count)
        cached.flags.writeable = False  # shared across trials
        _FREAD_CACHE[key] = cached
    return cached


def mp_fread(
    ws: Workspace,
    name: str,
    path: str | Path,
    stored: Precision = Precision.DOUBLE,
    count: int = -1,
    shape: tuple[int, ...] | None = None,
) -> MPArray:
    """Read a binary file into a workspace array variable.

    The file holds ``stored``-precision elements; the returned array
    uses whatever precision the active configuration assigns to
    ``name`` (the conversion the paper's ``mp_fread`` performs).
    Repeated reads of an unchanged file are served from a per-process
    cache; the recorded I/O traffic is identical either way.
    """
    raw = _read_typed_cached(Path(path), stored, count)
    if shape is not None:
        raw = raw.reshape(shape)
    ws.profile.record_io(float(raw.nbytes))
    return ws.array(name, init=raw)


def mp_fwrite(
    ws: Workspace,
    data: Any,
    path: str | Path,
    stored: Precision = Precision.DOUBLE,
) -> int:
    """Write an array to a binary file in the declared stored format.

    Converts from the in-memory precision back to ``stored`` (the
    conversion the paper's ``mp_fwrite`` performs) and records the
    traffic in the profile.
    """
    nbytes = write_typed(path, data, stored=stored)
    ws.profile.record_io(float(nbytes))
    source = unwrap(data)
    if isinstance(source, np.ndarray) and source.dtype != stored.dtype:
        ws.profile.record_cast(float(source.size))
    return nbytes
