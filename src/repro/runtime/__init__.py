"""Runtime library: precision-agnostic allocation, typed I/O, profiling,
and the roofline machine model (the paper's runtime library analogue)."""

from repro.runtime.io import mp_fread, mp_fwrite, read_typed, write_typed
from repro.runtime.machine import (
    DEFAULT_MACHINE, HBM_ACCELERATOR_MACHINE, MACHINE_PRESETS,
    WIDE_VECTOR_MACHINE, CacheLevel, MachineModel,
)
from repro.runtime.memory import Workspace
from repro.runtime.mparray import MPArray, unwrap, wrap
from repro.runtime.profiler import OpClass, Profile

__all__ = [
    "Workspace", "MPArray", "unwrap", "wrap",
    "Profile", "OpClass",
    "MachineModel", "CacheLevel", "DEFAULT_MACHINE",
    "WIDE_VECTOR_MACHINE", "HBM_ACCELERATOR_MACHINE", "MACHINE_PRESETS",
    "mp_fread", "mp_fwrite", "read_typed", "write_typed",
]
