"""Instrumented NumPy arrays for mixed-precision benchmarks.

:class:`MPArray` wraps an ``ndarray`` and records every operation that
touches it into a :class:`~repro.runtime.profiler.Profile`:

* ufuncs (element-wise math, reductions, accumulations) via
  ``__array_ufunc__`` — element counts, memory traffic and implicit
  promotion casts;
* non-ufunc NumPy functions (``np.dot``, ``np.where``, reductions) via
  ``__array_function__``;
* indexed *gather* reads and *scatter* writes via ``__getitem__`` /
  ``__setitem__`` — these model the latency-bound indirect accesses of
  sparse and unstructured codes.

Because the wrapper subclasses ``NDArrayOperatorsMixin``, ordinary
arithmetic on wrapped arrays routes through the instrumentation, and
NumPy's NEP-50 promotion rules reproduce C's behaviour: a ``float64``
scalar (a C ``double`` variable or literal) promotes a ``float32``
array expression to double — *with a recorded cast* — while writing a
double expression into a ``float32`` array truncates, exactly like a C
assignment.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.runtime.profiler import OpClass, Profile, opclass_for_ufunc

__all__ = ["MPArray", "unwrap", "wrap"]


def unwrap(value: Any) -> Any:
    """Strip the MPArray wrapper, if present."""
    return value._data if isinstance(value, MPArray) else value


def wrap(value: Any, profile: Profile) -> Any:
    """Wrap ndarray results; pass scalars and 0-d results through as
    plain NumPy scalars (scalar work is negligible in the model)."""
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            return value[()]
        return MPArray(value, profile)
    return value


def _is_basic_index(key: Any) -> bool:
    """True for indexing that NumPy resolves to a view (no gather)."""
    if isinstance(key, tuple):
        return all(_is_basic_index(part) for part in key)
    return key is None or key is Ellipsis or isinstance(key, (int, np.integer, slice))


def _index_size(data: np.ndarray, key: Any) -> int:
    """Element count selected by a (possibly fancy) index, cheaply."""
    key = unwrap(key)
    if isinstance(key, np.ndarray):
        if key.dtype == bool:
            return int(np.count_nonzero(key))
        return int(key.size)
    if isinstance(key, (list, tuple)) and not _is_basic_index(key):
        try:
            return int(np.asarray(key).size)
        except Exception:
            return 1
    return 1


class MPArray(np.lib.mixins.NDArrayOperatorsMixin):
    """A profiled view over an ``ndarray``.

    All arrays derived from an :class:`MPArray` (results of arithmetic,
    slices, copies) share its profile, so an entire benchmark execution
    accumulates into a single operation log.
    """

    __slots__ = ("_data", "_profile")

    def __init__(self, data: np.ndarray, profile: Profile) -> None:
        if not isinstance(data, np.ndarray):
            raise TypeError(f"MPArray wraps ndarrays, got {type(data).__name__}")
        self._data = data
        self._profile = profile

    # -- plain attributes ---------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying ndarray (un-instrumented access)."""
        return self._data

    @property
    def profile(self) -> Profile:
        return self._profile

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def T(self) -> "MPArray":
        return MPArray(self._data.T, self._profile)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"MPArray({self._data!r})"

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def __bool__(self) -> bool:
        if self._data.size == 1:
            return bool(self._data.item())
        return bool(self._data)  # raises the usual ambiguity error

    def __float__(self) -> float:
        return float(self._data.item())

    def __int__(self) -> int:
        return int(self._data.item())

    def item(self) -> Any:
        return self._data.item()

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is None:
            return self._data
        return self._data.astype(dtype)

    # -- ufunc dispatch -------------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        raw_inputs = tuple(unwrap(x) for x in inputs)
        out = kwargs.get("out")
        out_was_wrapped = False
        if out is not None:
            raw_out = tuple(unwrap(o) for o in (out if isinstance(out, tuple) else (out,)))
            out_was_wrapped = any(isinstance(o, MPArray) for o in (out if isinstance(out, tuple) else (out,)))
            kwargs["out"] = raw_out

        result = getattr(ufunc, method)(*raw_inputs, **kwargs)
        self._record_ufunc(ufunc, method, raw_inputs, result)

        if isinstance(result, tuple):
            return tuple(wrap(part, self._profile) for part in result)
        if out is not None and out_was_wrapped and isinstance(result, np.ndarray):
            return MPArray(result, self._profile)
        return wrap(result, self._profile)

    def _record_ufunc(self, ufunc, method: str, raw_inputs: tuple, result: Any) -> None:
        primary = result[0] if isinstance(result, tuple) else result
        if isinstance(primary, np.ndarray):
            result_dtype = primary.dtype
            result_size = primary.size
            bytes_written = float(primary.nbytes)
        elif isinstance(primary, np.generic):
            result_dtype = primary.dtype
            result_size = 1
            bytes_written = float(result_dtype.itemsize)
        else:
            result_dtype = np.dtype(np.float64)
            result_size = 1
            bytes_written = 8.0

        array_inputs = [x for x in raw_inputs if isinstance(x, np.ndarray)]
        bytes_read = float(sum(x.nbytes for x in array_inputs))
        input_sizes = [x.size for x in array_inputs]
        max_input = max(input_sizes, default=1)

        if ufunc.__name__ in ("matmul", "vecdot"):
            # flops for matmul: 2 · (result elements) · (contraction length)
            contraction = array_inputs[0].shape[-1] if array_inputs else 1
            n = 2.0 * max(result_size, 1) * contraction
        elif method in ("reduce", "accumulate", "reduceat"):
            n = float(max_input)
        elif method == "outer":
            n = float(result_size)
        elif method == "at":
            n = float(_index_size(array_inputs[0], raw_inputs[1]) if len(raw_inputs) > 1 else max_input)
        else:  # __call__
            n = float(max(result_size, max_input))

        # Promotion casts: floating inputs narrower/wider than the
        # compute dtype are converted element-by-element, like C.
        casts = 0.0
        if result_dtype.kind == "f":
            for x in array_inputs:
                if x.dtype.kind == "f" and x.dtype != result_dtype:
                    casts += x.size

        opclass = opclass_for_ufunc(ufunc.__name__, result_dtype.kind)
        compute_dtype = result_dtype.name
        if result_dtype.kind == "b" and array_inputs:
            # Comparisons compute at the input precision even though the
            # result is boolean.
            widest = max(
                (x.dtype for x in array_inputs if x.dtype.kind == "f"),
                key=lambda dt: dt.itemsize,
                default=None,
            )
            if widest is not None:
                compute_dtype = widest.name
                opclass = OpClass.CHEAP
        self._profile.record_op(
            opclass, compute_dtype, n,
            bytes_read=bytes_read, bytes_written=bytes_written, casts=casts,
        )

    # -- non-ufunc NumPy functions ---------------------------------------------
    def __array_function__(self, func, types, args, kwargs):
        handler = _FUNCTION_HANDLERS.get(func)
        raw_args = _unwrap_tree(args)
        raw_kwargs = _unwrap_tree(kwargs)
        result = func(*raw_args, **raw_kwargs)
        if handler is not None:
            handler(self._profile, raw_args, result)
        else:
            _record_generic(self._profile, raw_args, result)
        return _wrap_tree(result, self._profile)

    # -- indexing ---------------------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        raw_key = _unwrap_tree(key)
        result = self._data[raw_key]
        if not _is_basic_index(raw_key):
            n = result.size if isinstance(result, np.ndarray) else 1
            nbytes = result.nbytes if isinstance(result, np.ndarray) else self.dtype.itemsize
            self._profile.record_gather(float(n), float(nbytes))
        return wrap(result, self._profile)

    def __setitem__(self, key: Any, value: Any) -> None:
        raw_key = _unwrap_tree(key)
        raw_value = unwrap(value)
        basic = _is_basic_index(raw_key)
        if basic:
            target = self._data[raw_key]
            n = target.size if isinstance(target, np.ndarray) else 1
        else:
            n = _index_size(self._data, raw_key)
        value_dtype = getattr(raw_value, "dtype", None)
        casts = 0.0
        if value_dtype is not None and value_dtype.kind == "f" and value_dtype != self.dtype:
            value_size = getattr(raw_value, "size", 1)
            casts = float(min(value_size, n))
        self._data[raw_key] = raw_value
        if basic:
            self._profile.record_op(
                OpClass.MOVE, self.dtype.name, float(n),
                bytes_written=float(n) * self.dtype.itemsize, casts=casts,
            )
        else:
            self._profile.record_gather(float(n), float(n) * self.dtype.itemsize)
            if casts:
                self._profile.record_cast(casts)

    # -- shape/dtype helpers -----------------------------------------------------
    def reshape(self, *shape) -> "MPArray":
        return MPArray(self._data.reshape(*shape), self._profile)

    def ravel(self) -> "MPArray":
        return MPArray(self._data.ravel(), self._profile)

    def transpose(self, *axes) -> "MPArray":
        return MPArray(self._data.transpose(*axes), self._profile)

    def astype(self, dtype) -> "MPArray":
        dtype = np.dtype(dtype)
        if dtype != self.dtype:
            self._profile.record_cast(float(self.size))
        self._profile.record_op(
            OpClass.MOVE, dtype.name, float(self.size),
            bytes_read=float(self.nbytes), bytes_written=float(self.size * dtype.itemsize),
        )
        return MPArray(self._data.astype(dtype), self._profile)

    def copy(self) -> "MPArray":
        self._profile.record_op(
            OpClass.MOVE, self.dtype.name, float(self.size),
            bytes_read=float(self.nbytes), bytes_written=float(self.nbytes),
        )
        return MPArray(self._data.copy(), self._profile)

    def fill(self, value: Any) -> None:
        self._data.fill(unwrap(value))
        self._profile.record_op(
            OpClass.MOVE, self.dtype.name, float(self.size),
            bytes_written=float(self.nbytes),
        )

    # -- reductions as methods ------------------------------------------------
    def sum(self, *args, **kwargs):
        return np.sum(self, *args, **kwargs)

    def mean(self, *args, **kwargs):
        return np.mean(self, *args, **kwargs)

    def min(self, *args, **kwargs):
        return np.min(self, *args, **kwargs)

    def max(self, *args, **kwargs):
        return np.max(self, *args, **kwargs)

    def dot(self, other):
        return np.dot(self, other)

    def argmin(self, *args, **kwargs):
        return np.argmin(self, *args, **kwargs)

    def argmax(self, *args, **kwargs):
        return np.argmax(self, *args, **kwargs)


# ---------------------------------------------------------------------------
# __array_function__ plumbing


def _unwrap_tree(obj: Any) -> Any:
    if isinstance(obj, MPArray):
        return obj._data
    if isinstance(obj, tuple):
        return tuple(_unwrap_tree(x) for x in obj)
    if isinstance(obj, list):
        return [_unwrap_tree(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _unwrap_tree(v) for k, v in obj.items()}
    return obj


def _wrap_tree(obj: Any, profile: Profile) -> Any:
    if isinstance(obj, np.ndarray):
        return wrap(obj, profile)
    if isinstance(obj, tuple):
        return tuple(_wrap_tree(x, profile) for x in obj)
    if isinstance(obj, list):
        return [_wrap_tree(x, profile) for x in obj]
    return obj


def _array_args(raw_args: Any) -> list[np.ndarray]:
    found: list[np.ndarray] = []

    def visit(obj: Any) -> None:
        if isinstance(obj, np.ndarray):
            found.append(obj)
        elif isinstance(obj, (tuple, list)):
            for part in obj:
                visit(part)

    visit(raw_args)
    return found


def _result_stats(result: Any) -> tuple[float, float]:
    if isinstance(result, np.ndarray):
        return float(result.size), float(result.nbytes)
    if isinstance(result, np.generic):
        return 1.0, float(result.dtype.itemsize)
    return 1.0, 8.0


def _dtype_of(result: Any, arrays: list[np.ndarray]) -> str:
    if isinstance(result, (np.ndarray, np.generic)) and result.dtype.kind == "f":
        return result.dtype.name
    for arr in arrays:
        if arr.dtype.kind == "f":
            return arr.dtype.name
    return "float64"


def _record_generic(profile: Profile, raw_args: Any, result: Any) -> None:
    """Fallback accounting for NumPy functions without a dedicated
    handler: charge one cheap op per element of the largest operand."""
    arrays = _array_args(raw_args)
    result_size, result_bytes = _result_stats(result)
    n = max([a.size for a in arrays] + [result_size])
    profile.record_op(
        OpClass.CHEAP, _dtype_of(result, arrays), float(n),
        bytes_read=float(sum(a.nbytes for a in arrays)),
        bytes_written=result_bytes,
    )


def _record_dot(profile: Profile, raw_args: Any, result: Any) -> None:
    arrays = _array_args(raw_args)
    if len(arrays) < 2:
        _record_generic(profile, raw_args, result)
        return
    a, b = arrays[0], arrays[1]
    contraction = a.shape[-1] if a.ndim else 1
    result_size, result_bytes = _result_stats(result)
    flops = 2.0 * max(result_size, 1.0) * contraction
    profile.record_op(
        OpClass.CHEAP, _dtype_of(result, arrays), flops,
        bytes_read=float(a.nbytes + b.nbytes), bytes_written=result_bytes,
    )
    if a.dtype != b.dtype and a.dtype.kind == "f" and b.dtype.kind == "f":
        profile.record_cast(float(min(a.size, b.size)))


def _record_move(profile: Profile, raw_args: Any, result: Any) -> None:
    arrays = _array_args(raw_args)
    result_size, result_bytes = _result_stats(result)
    profile.record_op(
        OpClass.MOVE, _dtype_of(result, arrays), result_size,
        bytes_read=float(sum(a.nbytes for a in arrays)),
        bytes_written=result_bytes,
    )


def _record_reduction(profile: Profile, raw_args: Any, result: Any) -> None:
    arrays = _array_args(raw_args)
    n = float(max((a.size for a in arrays), default=1))
    result_size, result_bytes = _result_stats(result)
    profile.record_op(
        OpClass.CHEAP, _dtype_of(result, arrays), n,
        bytes_read=float(sum(a.nbytes for a in arrays)),
        bytes_written=result_bytes,
    )


_FUNCTION_HANDLERS: dict[Callable, Callable[[Profile, Any, Any], None]] = {
    np.dot: _record_dot,
    np.matmul: _record_dot,
    np.inner: _record_dot,
    np.where: _record_move,
    np.concatenate: _record_move,
    np.stack: _record_move,
    np.copyto: _record_move,
    np.sum: _record_reduction,
    np.mean: _record_reduction,
    np.prod: _record_reduction,
    np.amax: _record_reduction,
    np.amin: _record_reduction,
    np.max: _record_reduction,
    np.min: _record_reduction,
    np.argmax: _record_reduction,
    np.argmin: _record_reduction,
    np.count_nonzero: _record_reduction,
    np.any: _record_reduction,
    np.all: _record_reduction,
}
