"""Instrumented NumPy arrays for mixed-precision benchmarks.

:class:`MPArray` wraps an ``ndarray`` and records every operation that
touches it into a :class:`~repro.runtime.profiler.Profile`:

* ufuncs (element-wise math, reductions, accumulations) via
  ``__array_ufunc__`` — element counts, memory traffic and implicit
  promotion casts;
* non-ufunc NumPy functions (``np.dot``, ``np.where``, reductions) via
  ``__array_function__``;
* indexed *gather* reads and *scatter* writes via ``__getitem__`` /
  ``__setitem__`` — these model the latency-bound indirect accesses of
  sparse and unstructured codes.

Because the wrapper subclasses ``NDArrayOperatorsMixin``, ordinary
arithmetic on wrapped arrays routes through the instrumentation, and
NumPy's NEP-50 promotion rules reproduce C's behaviour: a ``float64``
scalar (a C ``double`` variable or literal) promotes a ``float32``
array expression to double — *with a recorded cast* — while writing a
double expression into a ``float32`` array truncates, exactly like a C
assignment.

Fast path
---------

Recording runs once per NumPy call of every trial of every search, so
it is engineered not to dominate trial wall-clock.  Classifying an
operation (op class, compute dtype name, which inputs promote) depends
only on its *signature* — ``(ufunc, method, input dtypes, result
dtype)`` — so the classification runs once per unique signature and is
cached in a recipe table; per call only the data-dependent quantities
(element counts, byte traffic) are gathered.  ``dtype.name`` string
formatting, the other pre-optimisation hot spot, is cached per dtype.

The pre-cache implementations are kept as the *reference recorder*;
:func:`reference_recording` switches them in so the bit-exactness
suite can prove both paths produce identical profiles and outputs.
"""

from __future__ import annotations

import contextlib
import sys
import threading
from typing import Any, Callable

import numpy as np

from repro.runtime.profiler import OpClass, Profile, opclass_for_ufunc
from repro.runtime.quantize import (
    quantize_array as _quantize_array,
    quantize_scalar as _quantize_scalar,
)

__all__ = [
    "MPArray", "QuantizedMPArray", "unwrap", "wrap", "reference_recording",
    "set_reference_mode", "DIRECT_OPERATOR_NAMES",
]

_FLOAT64 = np.dtype(np.float64)

#: dtype -> dtype.name; the ``.name`` property re-derives the string on
#: every access, which profiling shows at ~15 us per 1000 calls.
_DTYPE_NAMES: dict[np.dtype, str] = {}


def _dtype_name(dtype: np.dtype) -> str:
    try:
        return _DTYPE_NAMES[dtype]
    except KeyError:
        name = _DTYPE_NAMES[dtype] = dtype.name
        return name


#: dtype -> interned (OpClass.MOVE, dtype name) bucket key for the
#: copy/fill/astype/setitem bookkeeping paths
_MOVE_KEYS: dict[np.dtype, tuple[OpClass, str]] = {}


def _move_key(dtype: np.dtype) -> tuple[OpClass, str]:
    try:
        return _MOVE_KEYS[dtype]
    except KeyError:
        key = _MOVE_KEYS[dtype] = (OpClass.MOVE, _dtype_name(dtype))
        return key


# Element-count formulas per ufunc call shape; which one applies is a
# pure function of (ufunc, method), resolved once per signature.
_MODE_CALL, _MODE_REDUCE, _MODE_MATMUL, _MODE_OUTER, _MODE_AT = range(5)

#: (ufunc, method, result dtype, per-input dtype-or-None...) ->
#: ((opclass, compute dtype name), cast slots into the *raw* input
#: tuple, element-count mode, raw slot of the first array input or
#: -1).  Benchmarks reuse a handful of signatures millions of times,
#: so this table turns per-call classification into one dict probe.
#:
#: Concurrency: the hot-path *read* (``_RECIPES[key]``) is a single
#: bytecode dict probe, atomic under the GIL, and recipes are pure
#: functions of their key, so a racing double-build stores the same
#: value — reads therefore stay lock-free.  *Writes* go through
#: ``_remember_recipe`` below, which takes ``_RECIPES_LOCK`` so the
#: eviction sweep (the table is shared by every thread-pool worker and
#: would otherwise grow without bound across a long-lived service
#: process) never interleaves with another writer's insert.
_RECIPES: dict[tuple, tuple] = {}
_RECIPES_LOCK = threading.Lock()
#: size cap for the signature table; a full benchmark-suite sweep uses
#: a few hundred signatures, so 4096 means eviction only ever triggers
#: under adversarial dtype/shape churn.
_RECIPES_MAX = 4096


def _remember_recipe(key: tuple, recipe: tuple) -> None:
    """Insert one recipe under the lock, evicting the oldest quarter of
    the table first when it is full (insertion order ~ first use, so
    evicted signatures are the longest-unrefreshed ones; any still in
    live use are simply rebuilt on their next call)."""
    with _RECIPES_LOCK:
        if len(_RECIPES) >= _RECIPES_MAX:
            for stale in list(_RECIPES)[: _RECIPES_MAX // 4]:
                del _RECIPES[stale]
        _RECIPES[key] = recipe


def _build_ufunc_recipe(ufunc, method, result_dtype, input_dtypes):
    """Classify one operation signature exactly as the reference
    recorder does, returning the reusable recipe."""
    array_slots = [
        (slot, dt) for slot, dt in enumerate(input_dtypes) if dt is not None
    ]
    cast_slots: tuple[int, ...] = ()
    if result_dtype.kind == "f":
        # Promotion casts: floating inputs narrower/wider than the
        # compute dtype are converted element-by-element, like C.
        cast_slots = tuple(
            slot for slot, dt in array_slots
            if dt.kind == "f" and dt != result_dtype
        )
    opclass = opclass_for_ufunc(ufunc.__name__, result_dtype.kind)
    compute_dtype = _dtype_name(result_dtype)
    if result_dtype.kind == "b" and array_slots:
        # Comparisons compute at the input precision even though the
        # result is boolean.
        widest = max(
            (dt for _slot, dt in array_slots if dt.kind == "f"),
            key=lambda dt: dt.itemsize,
            default=None,
        )
        if widest is not None:
            compute_dtype = _dtype_name(widest)
            opclass = OpClass.CHEAP
    if ufunc.__name__ in ("matmul", "vecdot"):
        # flops for matmul: 2 · (result elements) · (contraction length)
        mode = _MODE_MATMUL
    elif method in ("reduce", "accumulate", "reduceat"):
        mode = _MODE_REDUCE
    elif method == "outer":
        mode = _MODE_OUTER
    elif method == "at":
        mode = _MODE_AT
    else:  # __call__
        mode = _MODE_CALL
    first_array = array_slots[0][0] if array_slots else -1
    return (opclass, compute_dtype), cast_slots, mode, first_array


#: True on the fast path.  Consulted by :meth:`Workspace.array` to gate
#: the init-copy elision (reference mode always copies), so the
#: bit-exactness suite also proves elision never aliases live data.
_FAST_MODE = True


def set_reference_mode(enabled: bool) -> None:
    """Select the recording implementation: the readable, uncached
    reference path (``True``) or the signature-cached fast path
    (``False``, the default).  Both produce bit-identical profiles;
    the bit-exactness suite exists to prove it."""
    global _FAST_MODE
    _FAST_MODE = not enabled
    if enabled:
        MPArray._record_ufunc = MPArray._record_ufunc_reference
        MPArray.__getitem__ = MPArray._getitem_reference
        MPArray.__setitem__ = MPArray._setitem_reference
    else:
        MPArray._record_ufunc = MPArray._record_ufunc_fast
        MPArray.__getitem__ = MPArray._getitem_fast
        MPArray.__setitem__ = MPArray._setitem_fast


@contextlib.contextmanager
def reference_recording():
    """Run a block under the reference (uncached) recorder."""
    set_reference_mode(True)
    try:
        yield
    finally:
        set_reference_mode(False)


def unwrap(value: Any) -> Any:
    """Strip the MPArray wrapper, if present."""
    return value._data if isinstance(value, MPArray) else value


def wrap(value: Any, profile: Profile) -> Any:
    """Wrap ndarray results; pass scalars and 0-d results through as
    plain NumPy scalars (scalar work is negligible in the model)."""
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            return value[()]
        return MPArray(value, profile)
    return value


def _is_basic_index(key: Any) -> bool:
    """True for indexing that NumPy resolves to a view (no gather)."""
    kind = type(key)
    if kind is slice or kind is int:  # the overwhelmingly common cases
        return True
    if kind is tuple or isinstance(key, tuple):
        return all(_is_basic_index(part) for part in key)
    return key is None or key is Ellipsis or isinstance(key, (int, np.integer, slice))


def _index_size(data: np.ndarray, key: Any) -> int:
    """Element count selected by a (possibly fancy) index, cheaply."""
    key = unwrap(key)
    if isinstance(key, np.ndarray):
        if key.dtype == bool:
            return int(np.count_nonzero(key))
        return int(key.size)
    if isinstance(key, (list, tuple)) and not _is_basic_index(key):
        try:
            return int(np.asarray(key).size)
        except Exception:
            return 1
    return 1


class MPArray(np.lib.mixins.NDArrayOperatorsMixin):
    """A profiled view over an ``ndarray``.

    All arrays derived from an :class:`MPArray` (results of arithmetic,
    slices, copies) share its profile, so an entire benchmark execution
    accumulates into a single operation log.
    """

    __slots__ = ("_data", "_profile")

    def __init__(self, data: np.ndarray, profile: Profile) -> None:
        if not isinstance(data, np.ndarray):
            raise TypeError(f"MPArray wraps ndarrays, got {type(data).__name__}")
        self._data = data
        self._profile = profile

    # -- plain attributes ---------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying ndarray (un-instrumented access)."""
        return self._data

    @property
    def profile(self) -> Profile:
        return self._profile

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def T(self) -> "MPArray":
        return MPArray(self._data.T, self._profile)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"MPArray({self._data!r})"

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def __bool__(self) -> bool:
        if self._data.size == 1:
            return bool(self._data.item())
        return bool(self._data)  # raises the usual ambiguity error

    def __float__(self) -> float:
        return float(self._data.item())

    def __int__(self) -> int:
        return int(self._data.item())

    def item(self) -> Any:
        return self._data.item()

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is None:
            return self._data
        return self._data.astype(dtype)

    # -- ufunc dispatch -------------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if kwargs:
            # ``out=`` (and friends) can mutate traced buffers; break
            # any active fused region / learning chain first.
            tracer = self._profile.fuse
            if tracer is not None:
                tracer.foreign()
            return self._array_ufunc_with_kwargs(ufunc, method, inputs, kwargs)
        if len(inputs) == 2:
            x0, x1 = inputs
            raw_inputs = (
                x0._data if isinstance(x0, MPArray) else x0,
                x1._data if isinstance(x1, MPArray) else x1,
            )
        elif len(inputs) == 1:
            x0 = inputs[0]
            raw_inputs = (x0._data if isinstance(x0, MPArray) else x0,)
        else:
            raw_inputs = tuple(
                x._data if isinstance(x, MPArray) else x for x in inputs
            )
        if method == "__call__":
            tracer = self._profile.fuse
            if tracer is not None and len(raw_inputs) <= 2:
                if len(raw_inputs) == 2:
                    fused = tracer.offer2(ufunc, raw_inputs[0], raw_inputs[1])
                else:
                    fused = tracer.offer1(ufunc, raw_inputs[0])
                if fused is not None:
                    wrapped = _MP_NEW(MPArray)
                    wrapped._data = fused
                    wrapped._profile = self._profile
                    return wrapped
            result = ufunc(*raw_inputs)
            self._record_ufunc(ufunc, method, raw_inputs, result)
            if tracer is not None and len(raw_inputs) <= 2:
                if len(raw_inputs) == 2:
                    tracer.note2(ufunc, raw_inputs[0], raw_inputs[1], result)
                else:
                    tracer.note1(ufunc, raw_inputs[0], result)
        else:
            if method == "at":
                # ufunc.at mutates its first operand in place.
                tracer = self._profile.fuse
                if tracer is not None:
                    tracer.foreign()
            result = getattr(ufunc, method)(*raw_inputs)
            self._record_ufunc(ufunc, method, raw_inputs, result)
            if method == "at" and isinstance(inputs[0], QuantizedMPArray):
                inputs[0]._quantize_storage()

        profile = self._profile
        if isinstance(result, np.ndarray):
            if result.ndim:
                wrapped = _MP_NEW(MPArray)
                wrapped._data = result
                wrapped._profile = profile
                return wrapped
            return result[()]
        if isinstance(result, tuple):
            return tuple(wrap(part, profile) for part in result)
        return result

    def _array_ufunc_with_kwargs(self, ufunc, method, inputs, kwargs):
        """The general (``out=``, ``axis=``, ...) dispatch path."""
        raw_inputs = tuple(unwrap(x) for x in inputs)
        out = kwargs.get("out")
        out_was_wrapped = False
        if out is not None:
            raw_out = tuple(unwrap(o) for o in (out if isinstance(out, tuple) else (out,)))
            out_was_wrapped = any(isinstance(o, MPArray) for o in (out if isinstance(out, tuple) else (out,)))
            kwargs["out"] = raw_out

        result = getattr(ufunc, method)(*raw_inputs, **kwargs)
        self._record_ufunc(ufunc, method, raw_inputs, result)
        if out is not None:
            # ``out=`` writes into variable storage directly (this is
            # also how the operator mixin implements ``+=`` etc.); any
            # emulated-format target must re-round what was written.
            for target in (out if isinstance(out, tuple) else (out,)):
                if isinstance(target, QuantizedMPArray):
                    target._quantize_storage()

        if isinstance(result, tuple):
            return tuple(wrap(part, self._profile) for part in result)
        if out is not None and out_was_wrapped and isinstance(result, np.ndarray):
            # Hand back the caller's own wrapper (the mixin's in-place
            # operators rebind their target to this return value, and a
            # QuantizedMPArray must stay quantised through ``x += y``).
            for target in (out if isinstance(out, tuple) else (out,)):
                if isinstance(target, MPArray) and target._data is result:
                    return target
            return MPArray(result, self._profile)
        return wrap(result, self._profile)

    def _record_ufunc_fast(self, ufunc, method: str, raw_inputs: tuple, result: Any) -> None:
        """Signature-cached recording: bit-identical counters to
        :meth:`_record_ufunc_reference` at a fraction of the cost."""
        primary = result[0] if isinstance(result, tuple) else result
        if isinstance(primary, np.ndarray):
            result_dtype = primary.dtype
            result_size = primary.size
            bytes_written = float(primary.nbytes)
        elif isinstance(primary, np.generic):
            result_dtype = primary.dtype
            result_size = 1
            bytes_written = float(result_dtype.itemsize)
        else:
            result_dtype = _FLOAT64
            result_size = 1
            bytes_written = 8.0

        # Arity-specialised signature assembly: one- and two-input calls
        # cover every hot op, and building their key tuples directly
        # skips a per-call list build.
        n_in = len(raw_inputs)
        if n_in == 2:
            x0, x1 = raw_inputs
            if isinstance(x0, np.ndarray):
                d0 = x0.dtype
                bytes_read = float(x0.nbytes)
                max_input = x0.size
            else:
                d0 = None
                bytes_read = 0.0
                max_input = 1
            if isinstance(x1, np.ndarray):
                d1 = x1.dtype
                bytes_read += x1.nbytes
                if x1.size > max_input:
                    max_input = x1.size
            else:
                d1 = None
            key = (ufunc, method, result_dtype, d0, d1)
        elif n_in == 1:
            x0 = raw_inputs[0]
            if isinstance(x0, np.ndarray):
                key = (ufunc, method, result_dtype, x0.dtype)
                bytes_read = float(x0.nbytes)
                max_input = x0.size
            else:
                key = (ufunc, method, result_dtype, None)
                bytes_read = 0.0
                max_input = 1
        else:
            sig: list = [ufunc, method, result_dtype]
            bytes_read = 0.0
            max_input = 1
            for x in raw_inputs:
                if isinstance(x, np.ndarray):
                    sig.append(x.dtype)
                    bytes_read += x.nbytes
                    if x.size > max_input:
                        max_input = x.size
                else:
                    sig.append(None)
            key = tuple(sig)
        try:
            opkey, cast_slots, mode, first_array = _RECIPES[key]
        except KeyError:
            recipe = _build_ufunc_recipe(ufunc, method, result_dtype, key[3:])
            _remember_recipe(key, recipe)
            opkey, cast_slots, mode, first_array = recipe

        if mode == _MODE_CALL:
            n = float(result_size if result_size > max_input else max_input)
        elif mode == _MODE_REDUCE:
            n = float(max_input)
        elif mode == _MODE_MATMUL:
            contraction = raw_inputs[first_array].shape[-1] if first_array >= 0 else 1
            n = 2.0 * max(result_size, 1) * contraction
        elif mode == _MODE_OUTER:
            n = float(result_size)
        else:  # _MODE_AT
            n = float(
                _index_size(raw_inputs[first_array], raw_inputs[1])
                if n_in > 1 and first_array >= 0 else max_input
            )

        casts = 0.0
        for slot in cast_slots:
            casts += raw_inputs[slot].size
        self._profile.record_op_keyed(opkey, n, bytes_read, bytes_written, casts)

    def _record_ufunc_reference(self, ufunc, method: str, raw_inputs: tuple, result: Any) -> None:
        """The original, uncached recording path.  Kept verbatim as the
        ground truth the bit-exactness suite checks the fast path
        against; selected via :func:`set_reference_mode`."""
        primary = result[0] if isinstance(result, tuple) else result
        if isinstance(primary, np.ndarray):
            result_dtype = primary.dtype
            result_size = primary.size
            bytes_written = float(primary.nbytes)
        elif isinstance(primary, np.generic):
            result_dtype = primary.dtype
            result_size = 1
            bytes_written = float(result_dtype.itemsize)
        else:
            result_dtype = np.dtype(np.float64)
            result_size = 1
            bytes_written = 8.0

        array_inputs = [x for x in raw_inputs if isinstance(x, np.ndarray)]
        bytes_read = float(sum(x.nbytes for x in array_inputs))
        input_sizes = [x.size for x in array_inputs]
        max_input = max(input_sizes, default=1)

        if ufunc.__name__ in ("matmul", "vecdot"):
            # flops for matmul: 2 · (result elements) · (contraction length)
            contraction = array_inputs[0].shape[-1] if array_inputs else 1
            n = 2.0 * max(result_size, 1) * contraction
        elif method in ("reduce", "accumulate", "reduceat"):
            n = float(max_input)
        elif method == "outer":
            n = float(result_size)
        elif method == "at":
            n = float(_index_size(array_inputs[0], raw_inputs[1]) if len(raw_inputs) > 1 else max_input)
        else:  # __call__
            n = float(max(result_size, max_input))

        # Promotion casts: floating inputs narrower/wider than the
        # compute dtype are converted element-by-element, like C.
        casts = 0.0
        if result_dtype.kind == "f":
            for x in array_inputs:
                if x.dtype.kind == "f" and x.dtype != result_dtype:
                    casts += x.size

        opclass = opclass_for_ufunc(ufunc.__name__, result_dtype.kind)
        compute_dtype = result_dtype.name
        if result_dtype.kind == "b" and array_inputs:
            # Comparisons compute at the input precision even though the
            # result is boolean.
            widest = max(
                (x.dtype for x in array_inputs if x.dtype.kind == "f"),
                key=lambda dt: dt.itemsize,
                default=None,
            )
            if widest is not None:
                compute_dtype = widest.name
                opclass = OpClass.CHEAP
        self._profile.record_op(
            opclass, compute_dtype, n,
            bytes_read=bytes_read, bytes_written=bytes_written, casts=casts,
        )

    #: active recording strategy (swapped by :func:`set_reference_mode`)
    _record_ufunc = _record_ufunc_fast

    # -- non-ufunc NumPy functions ---------------------------------------------
    def __array_function__(self, func, types, args, kwargs):
        tracer = self._profile.fuse
        if tracer is not None and (func in _MUTATING_FUNCTIONS or "out" in kwargs):
            tracer.foreign()
        raw_args = _unwrap_tree(args)
        raw_kwargs = _unwrap_tree(kwargs) if kwargs else kwargs
        result = func(*raw_args, **raw_kwargs)
        profile = self._profile
        handler = _FUNCTION_HANDLERS.get(func, _record_generic)
        handler(profile, raw_args, result)
        if isinstance(result, np.ndarray):
            if result.ndim:
                wrapped = _MP_NEW(MPArray)
                wrapped._data = result
                wrapped._profile = profile
                return wrapped
            return result[()]
        return _wrap_tree(result, profile)

    # -- indexing ---------------------------------------------------------------
    def _getitem_reference(self, key: Any) -> Any:
        raw_key = _unwrap_tree(key)
        result = self._data[raw_key]
        if not _is_basic_index(raw_key):
            n = result.size if isinstance(result, np.ndarray) else 1
            nbytes = result.nbytes if isinstance(result, np.ndarray) else self.dtype.itemsize
            self._profile.record_gather(float(n), float(nbytes))
        return wrap(result, self._profile)

    def _getitem_fast(self, key: Any) -> Any:
        """Basic (view) indexing records nothing, so it can skip key
        unwrapping and result classification entirely."""
        if _is_basic_index(key):
            result = self._data[key]
            if isinstance(result, np.ndarray):
                if result.ndim:
                    wrapped = _MP_NEW(MPArray)
                    wrapped._data = result
                    wrapped._profile = self._profile
                    return wrapped
                return result[()]
            return result
        return self._getitem_reference(key)

    def _setitem_reference(self, key: Any, value: Any) -> None:
        raw_key = _unwrap_tree(key)
        raw_value = unwrap(value)
        basic = _is_basic_index(raw_key)
        if basic:
            target = self._data[raw_key]
            n = target.size if isinstance(target, np.ndarray) else 1
        else:
            n = _index_size(self._data, raw_key)
        value_dtype = getattr(raw_value, "dtype", None)
        casts = 0.0
        if value_dtype is not None and value_dtype.kind == "f" and value_dtype != self.dtype:
            value_size = getattr(raw_value, "size", 1)
            casts = float(min(value_size, n))
        self._data[raw_key] = raw_value
        if basic:
            self._profile.record_op(
                OpClass.MOVE, self.dtype.name, float(n),
                bytes_written=float(n) * self.dtype.itemsize, casts=casts,
            )
        else:
            self._profile.record_gather(float(n), float(n) * self.dtype.itemsize)
            if casts:
                self._profile.record_cast(casts)

    def _setitem_fast(self, key: Any, value: Any) -> None:
        """Basic-index stores with the MOVE bucket key cached per dtype."""
        tracer = self._profile.fuse
        if tracer is not None:
            tracer.foreign()
        if not _is_basic_index(key):
            self._setitem_reference(key, value)
            return
        data = self._data
        raw_value = value._data if isinstance(value, MPArray) else value
        target = data[key]
        n = target.size if isinstance(target, np.ndarray) else 1
        dtype = data.dtype
        value_dtype = getattr(raw_value, "dtype", None)
        casts = 0.0
        if value_dtype is not None and value_dtype.kind == "f" and value_dtype != dtype:
            value_size = getattr(raw_value, "size", 1)
            casts = float(min(value_size, n))
        data[key] = raw_value
        self._profile.record_op_keyed(
            _move_key(dtype), float(n), 0.0, float(n) * dtype.itemsize, casts,
        )

    __getitem__ = _getitem_fast
    __setitem__ = _setitem_fast

    # -- shape/dtype helpers -----------------------------------------------------
    def reshape(self, *shape) -> "MPArray":
        return MPArray(self._data.reshape(*shape), self._profile)

    def ravel(self) -> "MPArray":
        return MPArray(self._data.ravel(), self._profile)

    def transpose(self, *axes) -> "MPArray":
        return MPArray(self._data.transpose(*axes), self._profile)

    def astype(self, dtype) -> "MPArray":
        dtype = np.dtype(dtype)
        if dtype != self.dtype:
            self._profile.record_cast(float(self.size))
        self._profile.record_op(
            OpClass.MOVE, dtype.name, float(self.size),
            bytes_read=float(self.nbytes), bytes_written=float(self.size * dtype.itemsize),
        )
        return MPArray(self._data.astype(dtype), self._profile)

    def copy(self) -> "MPArray":
        self._profile.record_op(
            OpClass.MOVE, self.dtype.name, float(self.size),
            bytes_read=float(self.nbytes), bytes_written=float(self.nbytes),
        )
        return MPArray(self._data.copy(), self._profile)

    def fill(self, value: Any) -> None:
        tracer = self._profile.fuse
        if tracer is not None:
            tracer.foreign()
        self._data.fill(unwrap(value))
        self._profile.record_op(
            OpClass.MOVE, self.dtype.name, float(self.size),
            bytes_written=float(self.nbytes),
        )

    # -- reductions as methods ------------------------------------------------
    def sum(self, *args, **kwargs):
        return np.sum(self, *args, **kwargs)

    def mean(self, *args, **kwargs):
        return np.mean(self, *args, **kwargs)

    def min(self, *args, **kwargs):
        return np.min(self, *args, **kwargs)

    def max(self, *args, **kwargs):
        return np.max(self, *args, **kwargs)

    def dot(self, other):
        return np.dot(self, other)

    def argmin(self, *args, **kwargs):
        return np.argmin(self, *args, **kwargs)

    def argmax(self, *args, **kwargs):
        return np.argmax(self, *args, **kwargs)


# ---------------------------------------------------------------------------
# __array_function__ plumbing


#: bound ``MPArray.__new__``: hot wrap sites build results with two
#: slot stores instead of a ``type.__call__`` -> ``__init__`` round
#: trip (the isinstance guard in ``__init__`` is for external callers;
#: internal sites always hold an ndarray).
_MP_NEW = MPArray.__new__


class QuantizedMPArray(MPArray):
    """Variable storage held in an emulated
    :class:`~repro.core.types.CustomFormat`: every store re-rounds the
    written region to the format's mantissa width (see
    :mod:`repro.runtime.quantize`).

    Only the *storage* of a declared variable is quantised — expression
    temporaries run at the storage dtype's full width, matching the
    compute model of hardware with narrow memory formats and wide
    registers.  All store sites (``__setitem__``, ``fill``, ``out=``,
    ``ufunc.at``, mutating ``__array_function__`` calls) already break
    fused regions via ``tracer.foreign()`` on the base class, so the
    extra rounding is structurally invisible to trace fusion: fused and
    interpreted emulated runs are bit-identical by construction.

    Views of quantised storage (slices, reshapes, transposes) are
    promoted back to :class:`QuantizedMPArray` so stores through them
    keep rounding; gathered copies and arithmetic results are plain
    :class:`MPArray`.
    """

    __slots__ = ("_qspec",)

    def _quantize_storage(self) -> None:
        """Re-round the whole backing buffer.  Idempotent for elements
        that were not just written: their mantissa tail is already zero,
        so nearest rounding is a no-op and stochastic rounding never
        rounds up (the round-up probability is ``tail / 2**s``)."""
        _quantize_array(self._data, self._qspec)

    def _requantize_key(self, key: Any) -> None:
        raw_key = _unwrap_tree(key)
        data = self._data
        if _is_basic_index(raw_key):
            target = data[raw_key]
            if isinstance(target, np.ndarray):
                _quantize_array(target, self._qspec)
            else:
                data[raw_key] = _quantize_scalar(target, self._qspec)
        else:
            gathered = data[raw_key]
            if isinstance(gathered, np.ndarray):
                _quantize_array(gathered, self._qspec)
                data[raw_key] = gathered
            else:
                data[raw_key] = _quantize_scalar(gathered, self._qspec)

    # ``MPArray.__setitem__`` is looked up at call time on purpose: it
    # is a class attribute that reference mode swaps, and the swap must
    # keep applying under the subclass.
    def __setitem__(self, key: Any, value: Any) -> None:
        MPArray.__setitem__(self, key, value)
        self._requantize_key(key)

    def fill(self, value: Any) -> None:
        MPArray.fill(self, value)
        _quantize_array(self._data, self._qspec)

    def __array_function__(self, func, types, args, kwargs):
        out = kwargs.get("out") if kwargs else None
        result = MPArray.__array_function__(self, func, types, args, kwargs)
        if func in _MUTATING_FUNCTIONS and args and isinstance(args[0], QuantizedMPArray):
            args[0]._quantize_storage()
        if out is not None:
            for target in (out if isinstance(out, tuple) else (out,)):
                if isinstance(target, QuantizedMPArray):
                    target._quantize_storage()
        return result

    def _adopt(self, result):
        """Promote views of this variable's storage so stores through
        them keep quantising; pass anything else through unchanged."""
        if type(result) is MPArray and np.may_share_memory(result._data, self._data):
            view = _MP_NEW(QuantizedMPArray)
            view._data = result._data
            view._profile = result._profile
            view._qspec = self._qspec
            return view
        return result

    def __getitem__(self, key: Any) -> Any:
        return self._adopt(MPArray.__getitem__(self, key))

    def reshape(self, *shape) -> "MPArray":
        return self._adopt(MPArray.reshape(self, *shape))

    def ravel(self) -> "MPArray":
        return self._adopt(MPArray.ravel(self))

    def transpose(self, *axes) -> "MPArray":
        return self._adopt(MPArray.transpose(self, *axes))

    @property
    def T(self) -> "MPArray":
        return self._adopt(MPArray(self._data.T, self._profile))

    def __repr__(self) -> str:
        return f"QuantizedMPArray({self._data!r}, format={self._qspec.fmt.name!r})"


_CONTAINERS = (tuple, list, dict)


def _unwrap_tree(obj: Any) -> Any:
    if isinstance(obj, MPArray):
        return obj._data
    cls = obj.__class__
    if cls is tuple:
        # One- and two-element tuples are the argument shapes every hot
        # NumPy call uses; build them without a generator frame.
        n = len(obj)
        if n == 2:
            x0, x1 = obj
            return (
                x0._data if isinstance(x0, MPArray)
                else (_unwrap_tree(x0) if isinstance(x0, _CONTAINERS) else x0),
                x1._data if isinstance(x1, MPArray)
                else (_unwrap_tree(x1) if isinstance(x1, _CONTAINERS) else x1),
            )
        if n == 1:
            x0 = obj[0]
            return (
                x0._data if isinstance(x0, MPArray)
                else (_unwrap_tree(x0) if isinstance(x0, _CONTAINERS) else x0),
            )
        return tuple(
            x._data if isinstance(x, MPArray)
            else (_unwrap_tree(x) if isinstance(x, _CONTAINERS) else x)
            for x in obj
        )
    if cls is list:
        return [
            x._data if isinstance(x, MPArray)
            else (_unwrap_tree(x) if isinstance(x, _CONTAINERS) else x)
            for x in obj
        ]
    if cls is dict:
        return {
            k: (
                v._data if isinstance(v, MPArray)
                else (_unwrap_tree(v) if isinstance(v, _CONTAINERS) else v)
            )
            for k, v in obj.items()
        }
    if isinstance(obj, _CONTAINERS):  # tuple/list/dict subclasses
        if isinstance(obj, tuple):
            return tuple(_unwrap_tree(x) for x in obj)
        if isinstance(obj, list):
            return [_unwrap_tree(x) for x in obj]
        return {k: _unwrap_tree(v) for k, v in obj.items()}
    return obj


def _wrap_tree(obj: Any, profile: Profile) -> Any:
    if isinstance(obj, np.ndarray):
        if obj.ndim:
            return MPArray(obj, profile)
        return obj[()]
    if isinstance(obj, (tuple, list)):
        parts = [_wrap_tree(x, profile) for x in obj]
        return parts if isinstance(obj, list) else tuple(parts)
    return obj


def _array_args(raw_args: Any) -> list[np.ndarray]:
    if isinstance(raw_args, np.ndarray):
        return [raw_args]
    found: list[np.ndarray] = []
    for obj in raw_args:
        if isinstance(obj, np.ndarray):
            found.append(obj)
        elif isinstance(obj, (tuple, list)):
            _visit_args(obj, found)
    return found


def _visit_args(obj: Any, found: list[np.ndarray]) -> None:
    for part in obj:
        if isinstance(part, np.ndarray):
            found.append(part)
        elif isinstance(part, (tuple, list)):
            _visit_args(part, found)


def _result_stats(result: Any) -> tuple[float, float]:
    if isinstance(result, np.ndarray):
        return float(result.size), float(result.nbytes)
    if isinstance(result, np.generic):
        return 1.0, float(result.dtype.itemsize)
    return 1.0, 8.0


def _dtype_of(result: Any, arrays: list[np.ndarray]) -> str:
    if isinstance(result, (np.ndarray, np.generic)) and result.dtype.kind == "f":
        return _dtype_name(result.dtype)
    for arr in arrays:
        if arr.dtype.kind == "f":
            return _dtype_name(arr.dtype)
    return "float64"


def _record_generic(profile: Profile, raw_args: Any, result: Any) -> None:
    """Fallback accounting for NumPy functions without a dedicated
    handler: charge one cheap op per element of the largest operand."""
    arrays = _array_args(raw_args)
    result_size, result_bytes = _result_stats(result)
    n = max([a.size for a in arrays] + [result_size])
    profile.record_op(
        OpClass.CHEAP, _dtype_of(result, arrays), float(n),
        bytes_read=float(sum(a.nbytes for a in arrays)),
        bytes_written=result_bytes,
    )


def _record_dot(profile: Profile, raw_args: Any, result: Any) -> None:
    # np.dot(a, b) with two plain arrays is the hot shape; skip the
    # generic argument walk for it.
    if (
        type(raw_args) is tuple and len(raw_args) == 2
        and isinstance(raw_args[0], np.ndarray)
        and isinstance(raw_args[1], np.ndarray)
    ):
        a, b = raw_args
        arrays = raw_args
    else:
        arrays = _array_args(raw_args)
        if len(arrays) < 2:
            _record_generic(profile, raw_args, result)
            return
        a, b = arrays[0], arrays[1]
    contraction = a.shape[-1] if a.ndim else 1
    result_size, result_bytes = _result_stats(result)
    flops = 2.0 * max(result_size, 1.0) * contraction
    profile.record_op(
        OpClass.CHEAP, _dtype_of(result, arrays), flops,
        bytes_read=float(a.nbytes + b.nbytes), bytes_written=result_bytes,
    )
    if a.dtype != b.dtype and a.dtype.kind == "f" and b.dtype.kind == "f":
        profile.record_cast(float(min(a.size, b.size)))


def _record_move(profile: Profile, raw_args: Any, result: Any) -> None:
    arrays = _array_args(raw_args)
    result_size, result_bytes = _result_stats(result)
    profile.record_op(
        OpClass.MOVE, _dtype_of(result, arrays), result_size,
        bytes_read=float(sum(a.nbytes for a in arrays)),
        bytes_written=result_bytes,
    )


def _record_reduction(profile: Profile, raw_args: Any, result: Any) -> None:
    # np.sum(x) / np.min(x) style single-array calls dominate; skip the
    # generic argument walk for them.
    if (
        type(raw_args) is tuple and len(raw_args) == 1
        and isinstance(raw_args[0], np.ndarray)
    ):
        arr = raw_args[0]
        if isinstance(result, np.ndarray):
            result_bytes = float(result.nbytes)
        elif isinstance(result, np.generic):
            result_bytes = float(result.dtype.itemsize)
        else:
            result_bytes = 8.0
        profile.record_op(
            OpClass.CHEAP, _dtype_of(result, (arr,)), float(arr.size),
            bytes_read=float(arr.nbytes), bytes_written=result_bytes,
        )
        return
    arrays = _array_args(raw_args)
    n = float(max((a.size for a in arrays), default=1))
    result_size, result_bytes = _result_stats(result)
    profile.record_op(
        OpClass.CHEAP, _dtype_of(result, arrays), n,
        bytes_read=float(sum(a.nbytes for a in arrays)),
        bytes_written=result_bytes,
    )


# ---------------------------------------------------------------------------
# Arithmetic operators: direct dispatch with dead-temporary buffer reuse
#
# Plain ndarray expression chains get NumPy's C-level temporary elision:
# in `a - b + c` the intermediate buffer is reused for the second op.
# Wrapped arrays never did — each MPArray op allocated a fresh result —
# which on multi-megabyte operands costs more than the recording itself.
# The binary/unary operators below dispatch their ufunc directly (same
# ufunc, same operand order, same recording call) and, when the
# left/right operand is *provably a dead temporary* — an expression
# intermediate nothing else references — compute into its buffer with
# ``out=``.  The ufunc inner loop is identical either way, so values
# are bit-identical; only the allocation disappears.
#
# "Provably dead" is a refcount test, exactly NumPy's own elision rule.
# The expected refcounts of a temporary at the test site are measured
# at import time by `_calibrate_reuse` on this very interpreter; a
# bound operand measures one higher.  If the interpreter's calling
# convention ever changes the pattern, calibration fails closed and
# every op takes the ordinary allocate path.  Reference mode
# (`set_reference_mode`) also disables reuse, so the bit-exactness
# suite checks this machinery end to end.

#: binary ufuncs whose result dtype always equals the (floating) input
#: dtype under NEP-50 with a same-dtype/weak-scalar partner — the
#: precondition for writing into an operand's buffer.
_REUSE_UFUNCS = frozenset({np.add, np.subtract, np.multiply, np.true_divide, np.power})

_PY_SCALARS = (float, int, bool)
_KNOWN_OPERANDS = (np.ndarray, np.generic, float, int, complex)

#: refcount a dead temporary operand / its buffer shows at the reuse
#: test inside an operator frame; set by `_calibrate_reuse`, -9
#: (matches nothing) if calibration failed.  The left operand arrives
#: as the bare ``self`` argument; the right operand picks up one extra
#: reference from its ``b_wrapper`` binding, hence separate thresholds.
_T_SELF = -9
_T_DATA = -9
_T_OTHER = -9
_T_ODATA = -9


def _make_binop(ufunc):
    reusable = ufunc in _REUSE_UFUNCS

    def op(self, other):
        if other.__class__ is MPArray:
            b_wrapper = other
            b = other._data
        elif isinstance(other, _KNOWN_OPERANDS):
            b_wrapper = None
            b = other
        elif isinstance(other, MPArray):
            b_wrapper = other
            b = other._data
        elif getattr(other, "__array_ufunc__", True) is None:
            return NotImplemented
        else:
            return ufunc(self, other)  # full NumPy dispatch for exotic types
        a = self._data
        # Trace-fusion hook: an active compiled region may already hold
        # this op's result; a None return guarantees the tracer took no
        # new reference to self/a/b, so the reuse refcount test below
        # stays calibrated.
        tracer = self._profile.fuse
        if tracer is not None:
            fused = tracer.offer2(ufunc, a, b)
            if fused is not None:
                wrapped = _MP_NEW(MPArray)
                wrapped._data = fused
                wrapped._profile = self._profile
                return wrapped
        out = None
        if reusable and _FAST_MODE:
            if (
                a.dtype.kind == "f"
                and a.base is None
                and a.flags.writeable
                and sys.getrefcount(self) == _T_SELF
                and sys.getrefcount(a) == _T_DATA
                and (
                    b is a
                    or b.__class__ in _PY_SCALARS
                    or (isinstance(b, np.ndarray) and b.dtype == a.dtype and b.shape == a.shape)
                    or (isinstance(b, np.generic) and b.dtype == a.dtype)
                )
            ):
                out = a
            elif (
                b_wrapper is not None
                and b.dtype == a.dtype
                and b.dtype.kind == "f"
                and b.shape == a.shape
                and b.base is None
                and b.flags.writeable
                and sys.getrefcount(b_wrapper) == _T_OTHER
                and sys.getrefcount(b) == _T_ODATA
            ):
                out = b
        result = ufunc(a, b) if out is None else ufunc(a, b, out=out)
        self._record_ufunc(ufunc, "__call__", (a, b), result)
        if tracer is not None:
            tracer.note2(ufunc, a, b, result)
        if result.ndim:
            wrapped = _MP_NEW(MPArray)
            wrapped._data = result
            wrapped._profile = self._profile
            return wrapped
        return result[()]

    return op


def _make_rbinop(ufunc):
    reusable = ufunc in _REUSE_UFUNCS

    def op(self, other):
        if isinstance(other, _KNOWN_OPERANDS):
            b = other
        elif isinstance(other, MPArray):
            b = other._data
        elif getattr(other, "__array_ufunc__", True) is None:
            return NotImplemented
        else:
            return ufunc(other, self)
        a = self._data
        tracer = self._profile.fuse
        if tracer is not None:
            fused = tracer.offer2(ufunc, b, a)
            if fused is not None:
                wrapped = _MP_NEW(MPArray)
                wrapped._data = fused
                wrapped._profile = self._profile
                return wrapped
        out = None
        if (
            reusable
            and _FAST_MODE
            and a.dtype.kind == "f"
            and a.base is None
            and a.flags.writeable
            and sys.getrefcount(self) == _T_SELF
            and sys.getrefcount(a) == _T_DATA
            and (
                b is a
                or b.__class__ in _PY_SCALARS
                or (isinstance(b, np.ndarray) and b.dtype == a.dtype and b.shape == a.shape)
                or (isinstance(b, np.generic) and b.dtype == a.dtype)
            )
        ):
            out = a
        result = ufunc(b, a) if out is None else ufunc(b, a, out=out)
        self._record_ufunc(ufunc, "__call__", (b, a), result)
        if tracer is not None:
            tracer.note2(ufunc, b, a, result)
        if result.ndim:
            wrapped = _MP_NEW(MPArray)
            wrapped._data = result
            wrapped._profile = self._profile
            return wrapped
        return result[()]

    return op


def _make_unop(ufunc):
    def op(self):
        a = self._data
        tracer = self._profile.fuse
        if tracer is not None:
            fused = tracer.offer1(ufunc, a)
            if fused is not None:
                wrapped = _MP_NEW(MPArray)
                wrapped._data = fused
                wrapped._profile = self._profile
                return wrapped
        if (
            _FAST_MODE
            and a.dtype.kind == "f"
            and a.base is None
            and a.flags.writeable
            and sys.getrefcount(self) == _T_SELF
            and sys.getrefcount(a) == _T_DATA
        ):
            result = ufunc(a, out=a)
        else:
            result = ufunc(a)
        self._record_ufunc(ufunc, "__call__", (a,), result)
        if tracer is not None:
            tracer.note1(ufunc, a, result)
        if result.ndim:
            wrapped = _MP_NEW(MPArray)
            wrapped._data = result
            wrapped._profile = self._profile
            return wrapped
        return result[()]

    return op


_OBSERVED: list = []


def _probe_op(self, other):
    """Frame-for-frame stand-in for a `_make_binop` operator: the same
    bindings exist, in the same order, when the refcounts are read."""
    if other.__class__ is MPArray:
        b_wrapper = other
        b = other._data
    else:
        b_wrapper = None
        b = other
    a = self._data
    _OBSERVED.append((
        sys.getrefcount(self),
        sys.getrefcount(a),
        0 if b_wrapper is None else sys.getrefcount(b_wrapper),
        0 if not isinstance(b, np.ndarray) else sys.getrefcount(b),
    ))
    return MPArray(np.add(a, b), self._profile)


def _calibrate_reuse() -> None:
    """Measure what refcount a dead expression temporary shows at the
    reuse test on this interpreter — once arriving as ``self`` (left
    operand) and once as ``other`` (right operand) — and confirm a
    bound operand shows exactly one more in both roles.  Any other
    pattern leaves reuse disabled — the safe direction."""
    global _T_SELF, _T_DATA, _T_OTHER, _T_ODATA
    profile = Profile()
    previous = MPArray.__add__
    MPArray.__add__ = _probe_op
    try:
        bound = MPArray(np.ones(2), profile)
        _OBSERVED.clear()
        MPArray(np.ones(2), profile) + bound  # temp left, bound right
        bound + MPArray(np.ones(2), profile)  # bound left, temp right
    finally:
        MPArray.__add__ = previous
    (t_self, t_data, ob_other, ob_odata), \
        (b_self, b_data, o_other, o_odata) = _OBSERVED
    if b_self == t_self + 1 and b_data == t_data:
        _T_SELF = t_self
        _T_DATA = t_data
    if ob_other == o_other + 1 and ob_odata == o_odata:
        _T_OTHER = o_other
        _T_ODATA = o_odata


_calibrate_reuse()

#: operator names bound below to direct-dispatch implementations that
#: construct plain MPArray results without consulting
#: ``__array_ufunc__``.  A subclass that must intercept every
#: operation (the shadow-value engine) re-binds exactly these names
#: back to their ``NDArrayOperatorsMixin`` versions, which route
#: through the ufunc protocol and therefore through the subclass.
DIRECT_OPERATOR_NAMES = (
    "__add__", "__radd__", "__sub__", "__rsub__",
    "__mul__", "__rmul__", "__truediv__", "__rtruediv__",
    "__pow__", "__rpow__", "__neg__", "__abs__",
)

MPArray.__add__ = _make_binop(np.add)
MPArray.__radd__ = _make_rbinop(np.add)
MPArray.__sub__ = _make_binop(np.subtract)
MPArray.__rsub__ = _make_rbinop(np.subtract)
MPArray.__mul__ = _make_binop(np.multiply)
MPArray.__rmul__ = _make_rbinop(np.multiply)
MPArray.__truediv__ = _make_binop(np.true_divide)
MPArray.__rtruediv__ = _make_rbinop(np.true_divide)
MPArray.__pow__ = _make_binop(np.power)
MPArray.__rpow__ = _make_rbinop(np.power)
MPArray.__neg__ = _make_unop(np.negative)
MPArray.__abs__ = _make_unop(np.absolute)


#: NumPy functions that write into an argument in place: the fusion
#: tracer must treat a call to any of these as a foreign mutation
#: (resolved at call time, so the set may live below the class body).
_MUTATING_FUNCTIONS = frozenset({np.copyto, np.put, np.place, np.putmask})

_FUNCTION_HANDLERS: dict[Callable, Callable[[Profile, Any, Any], None]] = {
    np.dot: _record_dot,
    np.matmul: _record_dot,
    np.inner: _record_dot,
    np.where: _record_move,
    np.concatenate: _record_move,
    np.stack: _record_move,
    np.copyto: _record_move,
    np.sum: _record_reduction,
    np.mean: _record_reduction,
    np.prod: _record_reduction,
    np.amax: _record_reduction,
    np.amin: _record_reduction,
    np.max: _record_reduction,
    np.min: _record_reduction,
    np.argmax: _record_reduction,
    np.argmin: _record_reduction,
    np.count_nonzero: _record_reduction,
    np.any: _record_reduction,
    np.all: _record_reduction,
}
