"""Store-side quantisation for emulated floating-point formats.

A :class:`~repro.core.types.CustomFormat` stores its values in a
built-in IEEE dtype (fp32 for ``e8m*``, fp64 for ``e11m*``) but keeps
only ``m`` explicit mantissa bits: every assignment into a variable of
the format rounds the stored bit pattern so the dropped mantissa tail
is zero.  This module holds the rounding kernels; the integration
points (where stores happen) live in :mod:`repro.runtime.memory` and
:mod:`repro.runtime.mparray`.

Two rounding modes are supported:

* **round-to-nearest-even** (default): the classic bias-add-truncate
  bit trick.  With ``s`` dropped tail bits, add
  ``((u >> s) & 1) + (2**(s-1) - 1)`` and clear the tail — ties go to
  the value whose kept LSB is zero.  Overflow past the largest
  representable value rounds to infinity, exactly as IEEE hardware
  would.
* **stochastic** (``sr`` formats): truncate, then round up with
  probability ``tail / 2**s`` using a per-variable
  ``numpy.random.Generator`` seeded from the workspace seed and the
  variable uid.  Store order is deterministic (quantisation sites are
  structurally outside fused regions), so the draw stream — and hence
  every run — replays bit-identically across interpreted, fused and
  shadow executions.

NaN handling: the bias add could carry a NaN's mantissa into the
exponent field, so NaN payloads are saved and restored around both
kernels.  Infinities are naturally safe — their mantissa field is zero,
the bias never reaches the kept bits, and truncation restores the tail.
Subnormals are truncated in the storage format's mantissa field
(VPREC-style): the emulated format inherits the storage format's
exponent range and gradual underflow.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.types import CustomFormat

__all__ = [
    "QuantSpec",
    "modeled_nbytes",
    "quantize_array",
    "quantize_scalar",
    "spec_for",
]

_UINT = {
    np.dtype(np.float32): np.dtype(np.uint32),
    np.dtype(np.float64): np.dtype(np.uint64),
}


def modeled_nbytes(fmt: CustomFormat, count: int) -> int:
    """Modeled footprint of ``count`` elements stored in ``fmt``."""
    return (int(count) * fmt.bits + 7) // 8


def _rng_seed(seed: int, uid: str) -> np.random.SeedSequence:
    """Deterministic per-variable seed: stochastic draws replay exactly
    for a given (workspace seed, variable uid) pair."""
    digest = hashlib.blake2b(uid.encode(), digest_size=8).digest()
    return np.random.SeedSequence((int(seed), int.from_bytes(digest, "big")))


class QuantSpec:
    """Resolved quantisation parameters for one variable."""

    __slots__ = ("fmt", "shift", "stochastic", "rng")

    def __init__(self, fmt: CustomFormat, seed: int, uid: str) -> None:
        self.fmt = fmt
        self.shift = fmt.shift
        self.stochastic = fmt.stochastic
        self.rng = (
            np.random.default_rng(_rng_seed(seed, uid)) if fmt.stochastic else None
        )


def spec_for(precision, seed: int, uid: str) -> QuantSpec | None:
    """The :class:`QuantSpec` for a resolved precision level, or
    ``None`` when no rounding is needed — built-in precisions and the
    storage-exact formats (``e8m23``/``e11m52``), whose runs must stay
    byte-identical to fp32/fp64."""
    if isinstance(precision, CustomFormat) and precision.shift > 0:
        return QuantSpec(precision, seed, uid)
    return None


def quantize_array(data: np.ndarray, spec: QuantSpec) -> None:
    """Round ``data`` (fp32/fp64, any shape) in place to ``spec``'s
    mantissa width."""
    shift = spec.shift
    u = data.view(_UINT[data.dtype])
    utype = u.dtype.type
    tail = utype((1 << shift) - 1)
    nan_mask = np.isnan(data)
    has_nan = bool(nan_mask.any())
    if has_nan:
        saved = u[nan_mask]
    if spec.stochastic:
        frac = u & tail
        draw = spec.rng.integers(0, 1 << shift, size=u.shape, dtype=u.dtype)
        up = draw < frac
        np.bitwise_and(u, ~tail, out=u)
        u[up] += utype(1 << shift)
    else:
        bias = ((u >> utype(shift)) & utype(1)) + utype((1 << (shift - 1)) - 1)
        u += bias
        np.bitwise_and(u, ~tail, out=u)
    if has_nan:
        u[nan_mask] = saved


def quantize_scalar(value, spec: QuantSpec):
    """Round one scalar; returns a NumPy scalar of the same dtype."""
    arr = np.array(value, ndmin=1)
    quantize_array(arr, spec)
    return arr.dtype.type(arr[0])
