"""Sensitivity-derived location orderings for guided search.

A :class:`ShadowOrder` carries the per-variable sensitivity scores of
one :class:`~repro.shadow.report.SensitivityReport` and knows how to
arrange the locations of any :class:`~repro.core.variables.SearchSpace`
— at either granularity, pruned or not — **most sensitive first**.
Search strategies receive it through
``ConfigurationEvaluator.location_order`` and consult it via
``SearchStrategy.ordered_locations``; with no order attached they fall
back to the space's canonical sorted order, byte-identically to the
unguided behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.variables import Granularity, SearchSpace

__all__ = ["ShadowOrder"]

#: score assigned to locations the shadow run never saw (conservative:
#: unknown means "treat as most sensitive", so guided searches try to
#: keep them at high precision first)
_UNKNOWN = float("inf")


@dataclass(frozen=True)
class ShadowOrder:
    """Most-sensitive-first ranking derived from one shadow run."""

    program: str
    precision: str
    #: variable uid -> sensitivity score (higher = more sensitive)
    scores: Mapping[str, float] = field(default_factory=dict)
    #: quality-metric value predicted for the uniformly-lowered program
    predicted_error: float | None = None

    def score_of(self, uids: Iterable[str]) -> float:
        """Sensitivity of a variable group: its worst *observed* member.

        Members the shadow run never saw are ignored as long as any
        member was observed: unobserved uids in a mixed group are
        parameter-binding aliases of observed storage (Typeforge names
        a callee's view of the same array separately) or genuinely
        untouched variables, neither of which adds divergence of its
        own.  A group with no observed member at all stays at the
        conservative "unknown = most sensitive" score.
        """
        observed = [self.scores[uid] for uid in uids if uid in self.scores]
        return max(observed) if observed else _UNKNOWN

    def location_score(self, space: SearchSpace, location: str) -> float:
        """Sensitivity of one location at the space's granularity."""
        if space.granularity is Granularity.CLUSTER:
            return self.score_of(space.cluster(location).members)
        return self.scores.get(location, _UNKNOWN)

    def arrange(self, locations: Iterable[str], space: SearchSpace) -> tuple[str, ...]:
        """``locations`` sorted most sensitive first; ties break on the
        location name so the result is deterministic."""
        return tuple(sorted(
            locations,
            key=lambda loc: (-self.location_score(space, loc), loc),
        ))
