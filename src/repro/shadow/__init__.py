"""Shadow-value sensitivity analysis (``repro.shadow``).

One instrumented run propagates lower-precision *shadow replicas*
(fp32, and fp16 where enabled) of every workspace variable alongside
the fp64 reference, attributing observed divergence back to the
variables that caused it.  The resulting
:class:`~repro.shadow.report.SensitivityReport` feeds three consumers:

* guided search — ``--order shadow`` ranks search locations
  most-sensitive-first for every registered strategy;
* predict-and-verify — ``mixpbench sensitivity`` turns the report
  into a candidate configuration and verifies it through the normal
  :class:`~repro.core.evaluator.ConfigurationEvaluator`;
* the ``shadow-stats`` experiment table.
"""

from repro.shadow.engine import ShadowArray, ShadowContext, ShadowWorkspace
from repro.shadow.order import ShadowOrder
from repro.shadow.recommend import Recommendation, recommend_and_verify
from repro.shadow.report import (
    SensitivityReport, VariableSensitivity, run_shadow_analysis,
    shadow_guidance,
)

__all__ = [
    "ShadowArray",
    "ShadowContext",
    "ShadowWorkspace",
    "ShadowOrder",
    "Recommendation",
    "recommend_and_verify",
    "SensitivityReport",
    "VariableSensitivity",
    "run_shadow_analysis",
    "shadow_guidance",
]
