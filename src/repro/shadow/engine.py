"""Shadow-value execution engine.

One instrumented run, three precisions: every workspace-declared
variable carries lower-precision *shadow replicas* (fp32 always, fp16
when enabled) that are propagated through every recorded operation
alongside the fp64 reference.  After the run, the
:class:`ShadowContext` holds per-variable error attribution — how far
each variable's shadow values diverged from the reference, where the
divergence first appeared, and how much each operation amplified it —
which :mod:`repro.shadow.report` turns into a
:class:`~repro.shadow.report.SensitivityReport`.

This is the repo's analogue of the dynamic shadow-value analysis the
paper's CRAFT layer offers next to black-box search: error knowledge
from *one* run instead of one trial per question.

Semantics and approximations
----------------------------

* The fp64 reference path is **bit-identical** to a normal
  instrumented run: the same data buffers, the same ufunc calls in the
  same order (the exactness test in ``tests/test_shadow.py`` pins
  this).  Shadows are computed *after* the reference result, never
  feeding back into it.
* Control flow (branches, index selection, loop trip counts) follows
  the reference values — the standard limitation of shadow-value
  analysis.  Shadow *condition* arrays are still propagated through
  ``np.where`` so data-dependent selection divergence is observed.
* Taint is tracked per wrapper: a value's taint is the set of declared
  variable uids whose storage participated in producing it.  Writing
  through an aliased view updates the view's taint, not its parents' —
  benchmarks in this suite write through the declared array itself.
* All shadow arithmetic runs under ``np.errstate(all="ignore")``: fp16
  replicas overflow and divide by zero readily, and that *is* the
  signal (an infinite divergence), not a warning.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import CustomFormat, parse_precision
from repro.runtime import fuse as _fuse
from repro.runtime import mparray as _mparray
from repro.runtime.memory import Workspace
from repro.runtime.mparray import (
    DIRECT_OPERATOR_NAMES, MPArray, _is_basic_index, _unwrap_tree, unwrap,
)
from repro.runtime.quantize import QuantSpec, quantize_array, quantize_scalar
from repro.verify.metrics import _relative_divergence_core

__all__ = ["ShadowContext", "ShadowArray", "ShadowWorkspace", "VariableStats"]


class VariableStats:
    """Mutable per-(variable, precision) attribution accumulators."""

    __slots__ = (
        "storage_error", "max_divergence", "first_divergence_op",
        "amplification", "ops", "sink_divergence",
    )

    def __init__(self) -> None:
        self.storage_error = 0.0
        self.max_divergence = 0.0
        self.first_divergence_op: int | None = None
        self.amplification = 0.0
        self.ops = 0
        self.sink_divergence = 0.0


class ShadowContext:
    """Shared state of one shadow execution.

    Holds the enabled shadow precisions, the running operation counter
    (the x-axis of "first divergence"), and the per-variable
    :class:`VariableStats` tables.
    """

    def __init__(self, precisions: tuple[str, ...] = ("single",)) -> None:
        if not precisions:
            raise ValueError("shadow execution needs at least one precision")
        self.precisions = tuple(precisions)
        formats = tuple(parse_precision(p) for p in self.precisions)
        for fmt in formats:
            if isinstance(fmt, CustomFormat) and fmt.stochastic:
                raise ValueError(
                    f"shadow replicas cannot use stochastic rounding "
                    f"({fmt.name}): replica values are intermediate, not "
                    "per-variable stores, so the seeded replay stream is "
                    "undefined; use the nearest-rounded format instead"
                )
        self.formats = formats
        self.dtypes = tuple(fmt.dtype for fmt in formats)
        # Emulated-width replicas quantise every propagated value
        # (VPREC-style round-after-every-op); None slots are the exact
        # hardware dtypes and skip the pass entirely.
        self._qspecs = tuple(
            QuantSpec(fmt, 0, f"shadow:{fmt.name}")
            if isinstance(fmt, CustomFormat) and fmt.shift > 0
            else None
            for fmt in formats
        )
        self.has_custom = any(spec is not None for spec in self._qspecs)
        self.n = len(self.dtypes)
        self.op_index = 0
        #: uid -> one VariableStats per enabled precision
        self.stats: dict[str, tuple[VariableStats, ...]] = {}
        self._zero_divs = (0.0,) * self.n

    def stats_for(self, uid: str) -> tuple[VariableStats, ...]:
        table = self.stats.get(uid)
        if table is None:
            table = self.stats[uid] = tuple(VariableStats() for _ in range(self.n))
        return table

    # -- event sinks -------------------------------------------------------
    def declare(
        self,
        uid: str,
        data: np.ndarray,
        shadows: tuple[np.ndarray, ...],
        carried_divs: tuple[float, ...] | None,
        known_divs: tuple[float, ...] | None = None,
    ) -> tuple[float, ...]:
        """Record a workspace declaration; returns the new wrapper's
        per-precision divergence levels.

        With ``carried_divs`` (the declaration copies an existing
        shadow value) the measured divergence is accumulated
        propagation error, so it does not count as *storage* error —
        that field only records the rounding a fresh fp64→shadow cast
        introduces.

        ``known_divs`` asserts the divergence of ``(data, shadows)``
        is already known bit-exactly — the declaration is a same-dtype
        copy (or aliases) of a wrapper whose ``_divs`` were produced by
        this very metric on these very values — so the measurement is
        skipped instead of recomputed.
        """
        self.op_index += 1
        op = self.op_index
        table = self.stats_for(uid)
        divs = []
        for k in range(self.n):
            if known_divs is not None:
                d = known_divs[k]
            else:
                d = _relative_divergence_core(data, shadows[k])
            st = table[k]
            if carried_divs is None:
                if d > st.storage_error:
                    st.storage_error = d
            if d > st.max_divergence:
                st.max_divergence = d
            if d > 0.0 and st.first_divergence_op is None:
                st.first_divergence_op = op
            divs.append(d)
        return tuple(divs)

    def observe(
        self,
        taint: frozenset,
        ref: np.ndarray,
        shadows: list,
        in_divs: tuple[float, ...],
    ) -> tuple[float, ...]:
        """Record one propagated operation with a floating result.

        ``shadows[k] is None`` marks a degraded slot (the shadow
        re-execution failed); its divergence level is carried forward
        unchanged.  The *amplification* credited to each tainting
        variable is the positive part of ``d_out - d_in`` — error this
        operation created beyond what its operands already carried,
        which is what singles accumulators out.
        """
        self.op_index += 1
        op = self.op_index
        n = self.n
        stats = self.stats
        if n == 1:
            # The default configuration: one fp32 replica.  Hoisting
            # the per-precision indexing out of the taint loop matters
            # because attribution is O(ops × tainting variables) —
            # the widest loop in a shadow run.
            s = shadows[0]
            in_d = in_divs[0]
            d = in_d if s is None else _relative_divergence_core(ref, s)
            diverged = d > 0.0
            delta = d - in_d if d > in_d else 0.0  # inf > inf is False
            for uid in taint:
                table = stats.get(uid)
                if table is None:
                    table = stats[uid] = (VariableStats(),)
                st = table[0]
                st.ops += 1
                if d > st.max_divergence:
                    st.max_divergence = d
                if diverged and st.first_divergence_op is None:
                    st.first_divergence_op = op
                if delta:
                    st.amplification += delta
            return (d,)
        divs = tuple(
            in_divs[k] if shadows[k] is None
            else _relative_divergence_core(ref, shadows[k])
            for k in range(n)
        )
        for uid in taint:
            table = stats.get(uid)
            if table is None:
                table = stats[uid] = tuple(VariableStats() for _ in range(n))
            for k in range(n):
                st = table[k]
                st.ops += 1
                d = divs[k]
                if d > st.max_divergence:
                    st.max_divergence = d
                if d > 0.0 and st.first_divergence_op is None:
                    st.first_divergence_op = op
                if d > in_divs[k]:  # inf > inf is False: no nan deltas
                    st.amplification += d - in_divs[k]
        return divs

    def observe_sink(self, taint: frozenset, ref: np.ndarray, shadow, k: int) -> None:
        """Record a value reaching a verification sink (program output)."""
        d = _relative_divergence_core(ref, shadow)
        for uid in taint:
            st = self.stats_for(uid)[k]
            if d > st.sink_divergence:
                st.sink_divergence = d

    # -- shadow-side evaluation helpers ------------------------------------
    def shadow_operand(self, value, k: int):
        """Operand ``value`` as the shadow program at precision ``k``
        sees it: shadow replicas for wrapped arrays, demoted copies for
        stray floating arrays/NumPy scalars (the whole program runs at
        the shadow precision), everything else unchanged (Python floats
        are weak under NEP-50 and already adopt the shadow dtype)."""
        if isinstance(value, ShadowArray):
            return value._shadows[k]
        if isinstance(value, MPArray):
            value = value._data
        dtype = self.dtypes[k]
        if isinstance(value, np.ndarray):
            if value.dtype.kind == "f" and value.dtype != dtype:
                return value.astype(dtype)
            return value
        if isinstance(value, np.floating):
            return dtype.type(value)
        return value

    def shadow_tree(self, obj, k: int):
        """:func:`shadow_operand` applied through tuple/list/dict trees
        (the ``__array_function__`` argument shapes)."""
        if isinstance(obj, tuple):
            return tuple(self.shadow_tree(x, k) for x in obj)
        if isinstance(obj, list):
            return [self.shadow_tree(x, k) for x in obj]
        if isinstance(obj, dict):
            return {key: self.shadow_tree(v, k) for key, v in obj.items()}
        return self.shadow_operand(obj, k)

    def cast_back(self, result, k: int):
        """Clamp a shadow result back to the shadow dtype.  Mixed
        integer/float promotion can widen past it; in the modeled
        all-at-precision-p program every intermediate is stored at p.
        Emulated-width replicas additionally round the stored mantissa
        here, so every operation's result passes through the format —
        the same store-side rounding the interpreted emulated path
        applies."""
        dtype = self.dtypes[k]
        if isinstance(result, np.ndarray):
            if result.dtype.kind == "f" and result.dtype.itemsize > dtype.itemsize:
                result = result.astype(dtype)
            if self._qspecs[k] is not None:
                return self.quantize(result, k)
            return result
        if isinstance(result, np.floating):
            if result.dtype.itemsize > dtype.itemsize:
                result = dtype.type(result)
            if self._qspecs[k] is not None:
                return self.quantize(result, k)
            return result
        return result

    def quantize(self, value, k: int):
        """Round a shadow value to replica ``k``'s emulated mantissa
        width (no-op for exact replicas).  Rounding is idempotent, so
        requantising an aliased, already-rounded buffer in place is
        safe; read-only views (broadcast results) are copied first."""
        spec = self._qspecs[k]
        if spec is None:
            return value
        if isinstance(value, np.ndarray):
            if value.dtype == self.dtypes[k]:
                if not value.flags.writeable:
                    value = value.copy()
                quantize_array(value, spec)
            return value
        if isinstance(value, np.floating) and value.dtype == self.dtypes[k]:
            return quantize_scalar(value, spec)
        return value


def _taint_and_divs(ctx: ShadowContext, inputs) -> tuple[frozenset, tuple[float, ...]]:
    """Union taint and per-precision max divergence over the wrapped
    operands of one operation.

    The single-wrapped-operand case (every unary op, plus binary ops
    against constants) returns the operand's own frozenset/tuple —
    both immutable, so sharing them with the result wrapper is safe
    and skips two allocations on the hottest path in shadow mode.
    """
    taint = None
    divs = None
    for x in inputs:
        if isinstance(x, ShadowArray):
            if taint is None:
                taint = x._taint
                divs = x._divs
            else:
                xt = x._taint
                if xt is not taint:
                    taint = taint | xt
                xd = x._divs
                if xd is not divs and xd != divs:
                    divs = tuple(max(a, b) for a, b in zip(divs, xd))
    if taint is None:
        return frozenset(), ctx._zero_divs
    return taint, divs


def _tree_taint_and_divs(ctx: ShadowContext, obj, taint, divs):
    if isinstance(obj, ShadowArray):
        return taint | obj._taint, tuple(max(a, b) for a, b in zip(divs, obj._divs))
    if isinstance(obj, (tuple, list)):
        for x in obj:
            taint, divs = _tree_taint_and_divs(ctx, x, taint, divs)
    elif isinstance(obj, dict):
        for x in obj.values():
            taint, divs = _tree_taint_and_divs(ctx, x, taint, divs)
    return taint, divs


def _shadow_new(ctx, data, profile, shadows, taint, divs, divs_exact=False):
    arr = ShadowArray.__new__(ShadowArray)
    arr._data = data
    arr._profile = profile
    arr._ctx = ctx
    arr._shadows = shadows
    arr._taint = taint
    arr._divs = divs
    arr._divs_exact = divs_exact
    return arr


class ShadowArray(MPArray):
    """An :class:`MPArray` that additionally carries one lower-precision
    replica of its data per enabled shadow precision.

    Recording (profile counters) is inherited unchanged; every
    operation additionally re-executes on the shadow replicas and
    reports the resulting divergence to the :class:`ShadowContext`.
    Unlike the base class, 0-d floating results stay wrapped so scalar
    accumulators (``q += x[i]*y[i]`` chains built via ``ws.scalar``)
    keep their lineage.
    """

    #: ``_divs_exact`` marks wrappers whose ``_divs`` are a fresh
    #: measurement of exactly the held ``(_data, _shadows)`` buffers —
    #: as opposed to a carried/merged upper bound (slices, ``out=``
    #: targets, degraded slots).  Declarations that copy such a wrapper
    #: at the same dtypes reuse the numbers instead of remeasuring.
    __slots__ = ("_ctx", "_shadows", "_taint", "_divs", "_divs_exact")

    def __init__(self, data, profile, ctx, shadows, taint=frozenset(), divs=None):
        super().__init__(data, profile)
        self._ctx = ctx
        self._shadows = tuple(shadows)
        self._taint = frozenset(taint)
        self._divs = tuple(divs) if divs is not None else ctx._zero_divs
        self._divs_exact = False

    def __repr__(self) -> str:
        return f"ShadowArray({self._data!r}, taint={sorted(self._taint)})"

    @property
    def shadows(self) -> tuple[np.ndarray, ...]:
        return self._shadows

    @property
    def taint(self) -> frozenset:
        return self._taint

    # -- ufunc dispatch ----------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        ctx = self._ctx
        # Trace-fusion hook: a matched region computes the reference
        # and every shadow replica in one generated pass and hands back
        # the finished wrapper (stats routed through ctx.observe, so
        # attribution is bit-identical).  ``out=`` and ``ufunc.at``
        # mutate traced buffers and end any active region instead.
        tracer = self._profile.fuse
        traceable = False
        if tracer is not None:
            if kwargs or method == "at":
                tracer.foreign()
            elif method == "__call__" and len(inputs) <= 2:
                fused = tracer.offer(ufunc, inputs)
                if fused is not None:
                    return fused
                traceable = True
        out = kwargs.get("out")
        raw_out = None
        if out is not None:
            raw_out = tuple(unwrap(o) for o in (out if isinstance(out, tuple) else (out,)))
            kwargs = dict(kwargs)
            kwargs["out"] = raw_out
        raw_inputs = tuple(x._data if isinstance(x, MPArray) else x for x in inputs)
        fn = ufunc if method == "__call__" else getattr(ufunc, method)
        result = fn(*raw_inputs, **kwargs) if kwargs else fn(*raw_inputs)
        self._record_ufunc(ufunc, method, raw_inputs, result)

        taint, in_divs = _taint_and_divs(ctx, inputs)
        shadows: list = []
        with np.errstate(all="ignore"):
            for k in range(ctx.n):
                try:
                    s_inputs = tuple(ctx.shadow_operand(x, k) for x in inputs)
                    s_kwargs = {}
                    if kwargs:
                        s_kwargs = {
                            key: ctx.shadow_tree(v, k) for key, v in kwargs.items()
                            if key != "out"
                        }
                    s = ctx.cast_back(fn(*s_inputs, **s_kwargs), k)
                except Exception:
                    s = None
                shadows.append(s)
        wrapped = self._finish(ufunc, method, inputs, result, taint, in_divs,
                               shadows, out, raw_out)
        if traceable:
            tracer.note(ufunc, inputs, result, wrapped)
        return wrapped

    def _finish(self, ufunc, method, inputs, result, taint, in_divs, shadows,
                out=None, raw_out=None):
        ctx = self._ctx
        profile = self._profile
        if isinstance(result, tuple):
            # Multi-output ufuncs (divmod, frexp) don't occur in the
            # suite; degrade to untracked base wrapping.
            return tuple(_mparray.wrap(part, profile) for part in result)
        if isinstance(result, np.ndarray):
            is_float = result.dtype.kind == "f"
            if result.ndim == 0 and not is_float:
                return result[()]
            fixed = []
            for k in range(ctx.n):
                s = shadows[k]
                if (
                    s is None
                    or not isinstance(s, (np.ndarray, np.generic))
                    or np.shape(s) != result.shape
                ):
                    # Degraded slot: keep shapes aligned by adopting
                    # the reference values (at shadow precision when
                    # floating — always a fresh buffer, never an alias
                    # of the reference data) and carrying the
                    # divergence level forward unchanged.
                    with np.errstate(all="ignore"):
                        s = result.astype(ctx.dtypes[k]) if is_float else result.copy()
                    if is_float:
                        shadows[k] = None
                    fixed.append(s)
                else:
                    fixed.append(np.asarray(s))
            if is_float:
                divs = ctx.observe(taint, result, shadows, in_divs)
                exact = not any(s is None for s in shadows)
            else:
                divs = in_divs
                exact = False
            if out is not None and raw_out is not None:
                target = out[0] if isinstance(out, tuple) else out
                if isinstance(target, ShadowArray):
                    with np.errstate(all="ignore"):
                        for k in range(ctx.n):
                            np.copyto(
                                target._shadows[k], fixed[k], casting="unsafe"
                            )
                    target._taint = target._taint | taint
                    target._divs = divs
                    # copyto may re-round to the target's dtype, so the
                    # measured numbers no longer describe its buffers.
                    target._divs_exact = False
                    return target
            return _shadow_new(ctx, result, profile, tuple(fixed), taint, divs, exact)
        if isinstance(result, np.generic):
            # np scalar result (reductions over 0-d etc.): keep lineage
            # for floats via a 0-d wrapper.
            if result.dtype.kind == "f":
                data = np.asarray(result)
                fixed = []
                for k in range(ctx.n):
                    s = shadows[k]
                    with np.errstate(all="ignore"):
                        if s is None or np.shape(s) != ():
                            fixed.append(np.asarray(data, dtype=ctx.dtypes[k]))
                            shadows[k] = None
                        else:
                            fixed.append(np.asarray(s))
                divs = ctx.observe(taint, data, shadows, in_divs)
                exact = not any(s is None for s in shadows)
                return _shadow_new(ctx, data, self._profile, tuple(fixed), taint, divs, exact)
            return result
        return result

    # -- non-ufunc NumPy functions -----------------------------------------
    def __array_function__(self, func, types, args, kwargs):
        ctx = self._ctx
        tracer = self._profile.fuse
        if tracer is not None and (
            func in _mparray._MUTATING_FUNCTIONS or "out" in kwargs
        ):
            tracer.foreign()
        raw_args = _unwrap_tree(args)
        raw_kwargs = _unwrap_tree(kwargs) if kwargs else kwargs
        result = func(*raw_args, **raw_kwargs)
        profile = self._profile
        handler = _mparray._FUNCTION_HANDLERS.get(func, _mparray._record_generic)
        handler(profile, raw_args, result)

        taint, in_divs = _tree_taint_and_divs(ctx, (args, kwargs), frozenset(), ctx._zero_divs)
        shadows: list = []
        with np.errstate(all="ignore"):
            for k in range(ctx.n):
                try:
                    s_args = ctx.shadow_tree(args, k)
                    s_kwargs = ctx.shadow_tree(kwargs, k) if kwargs else kwargs
                    s = ctx.cast_back(func(*s_args, **s_kwargs), k)
                except Exception:
                    s = None
                shadows.append(s)
        return self._finish(func, None, args, result, taint, in_divs, shadows)

    # -- indexing ----------------------------------------------------------
    def __getitem__(self, key):
        ctx = self._ctx
        raw_key = _unwrap_tree(key)
        data = self._data
        result = data[raw_key]
        if not _is_basic_index(raw_key):
            n = result.size if isinstance(result, np.ndarray) else 1
            nbytes = result.nbytes if isinstance(result, np.ndarray) else data.dtype.itemsize
            self._profile.record_gather(float(n), float(nbytes))
        # Shadows are indexed with the *reference* key: shadow-derived
        # fancy indices could select a different number of elements and
        # desynchronise shapes between the two programs.
        if isinstance(result, np.ndarray):
            shadows = tuple(s[raw_key] for s in self._shadows)
            return _shadow_new(ctx, result, self._profile, shadows, self._taint, self._divs)
        if isinstance(result, np.generic) and result.dtype.kind == "f":
            data0 = np.asarray(result)
            shadows = tuple(np.asarray(s[raw_key]) for s in self._shadows)
            return _shadow_new(ctx, data0, self._profile, shadows, self._taint, self._divs)
        return result

    def __setitem__(self, key, value):
        ctx = self._ctx
        # Base-class store: writes the reference data and records the
        # MOVE/gather exactly like a normal run (honours reference mode).
        MPArray.__setitem__(self, key, value)
        raw_key = _unwrap_tree(key)
        self._divs_exact = False
        with np.errstate(all="ignore"):
            if isinstance(value, ShadowArray):
                for k in range(ctx.n):
                    self._shadows[k][raw_key] = value._shadows[k]
                self._taint = self._taint | value._taint
                self._divs = tuple(max(a, b) for a, b in zip(self._divs, value._divs))
            else:
                raw_value = unwrap(value)
                for k in range(ctx.n):
                    self._shadows[k][raw_key] = raw_value

    # -- shape/dtype helpers ------------------------------------------------
    def _derive(self, data, shadows):
        return _shadow_new(self._ctx, data, self._profile, tuple(shadows),
                           self._taint, self._divs)

    def reshape(self, *shape):
        return self._derive(self._data.reshape(*shape),
                            (s.reshape(*shape) for s in self._shadows))

    def ravel(self):
        return self._derive(self._data.ravel(), (s.ravel() for s in self._shadows))

    def transpose(self, *axes):
        return self._derive(self._data.transpose(*axes),
                            (s.transpose(*axes) for s in self._shadows))

    @property
    def T(self):
        return self._derive(self._data.T, (s.T for s in self._shadows))

    def astype(self, dtype):
        dtype = np.dtype(dtype)
        base = MPArray.astype(self, dtype)  # records the cast + move
        with np.errstate(all="ignore"):
            return self._derive(base._data, (s.copy() for s in self._shadows))

    def copy(self):
        base = MPArray.copy(self)  # records the move
        return self._derive(base._data, (s.copy() for s in self._shadows))

    def fill(self, value):
        MPArray.fill(self, value)
        self._divs_exact = False
        raw = unwrap(value)
        with np.errstate(all="ignore"):
            if isinstance(value, ShadowArray):
                for k, s in enumerate(self._shadows):
                    s.fill(value._shadows[k][()] if value._shadows[k].ndim == 0
                           else value._shadows[k])
                self._taint = self._taint | value._taint
            else:
                for s in self._shadows:
                    s.fill(raw)


# The module bottom of repro.runtime.mparray rebinds the arithmetic
# operators to direct-dispatch closures that construct plain MPArray
# results (skipping __array_ufunc__ entirely).  ShadowArray must see
# every operation, so it restores the NDArrayOperatorsMixin versions,
# which route back through the ufunc protocol — and therefore through
# ShadowArray.__array_ufunc__ — for exactly those names.
for _name in DIRECT_OPERATOR_NAMES:
    setattr(ShadowArray, _name, getattr(np.lib.mixins.NDArrayOperatorsMixin, _name))
del _name


class ShadowWorkspace(Workspace):
    """A :class:`Workspace` whose declarations produce
    :class:`ShadowArray` values bound to one :class:`ShadowContext`.

    Always runs the all-double baseline configuration: the reference
    path is fp64, the shadow replicas model the uniformly-lowered
    program.  The init-copy elision of the base class is deliberately
    not replicated — a shadow run happens once per analysis, and the
    elision's refcount calibration is frame-layout sensitive.
    """

    def __init__(self, *args, shadow_context: ShadowContext, **kwargs):
        super().__init__(*args, **kwargs)
        self.shadow = shadow_context
        # Replace the base class's plain-mode tracer: shadow regions
        # update the reference and every replica in one generated pass.
        # Emulated-width replicas run interpreted instead — the traced
        # kernels don't apply per-op mantissa rounding, and divergence
        # scores must come from the same arithmetic the real emulated
        # run would use.
        if shadow_context.has_custom:
            self.profile.fuse = None
        else:
            self.profile.fuse = _fuse.shadow_tracer(self.profile, shadow_context)

    def _declare(self, uid, data, shadows, taint, carried_divs, known_divs=None):
        ctx = self.shadow
        if ctx.has_custom:
            # Declarations are stores: round each replica buffer to its
            # emulated width before divergence is measured.  Idempotent,
            # so aliased already-rounded buffers (param, same-dtype
            # scalar views) pass through unchanged.
            shadows = tuple(ctx.quantize(s, k) for k, s in enumerate(shadows))
        tracer = self.profile.fuse
        if tracer is not None:
            tracer.foreign()
        divs = ctx.declare(uid, data, shadows, carried_divs, known_divs)
        # Exact by construction: either just measured on these buffers,
        # or known_divs carried an equally exact measurement over.
        return _shadow_new(ctx, data, self.profile, shadows, taint, divs, True)

    def array(self, name, shape=None, init=None, fill=None):
        ctx = self.shadow
        dtype = self.dtype_of(name)
        uid = self.resolve(name)
        if (shape is None) == (init is None):
            raise ValueError("provide exactly one of shape= or init=")
        taint = frozenset((uid,))
        carried_divs = None
        init_shadows = None
        if init is not None:
            if isinstance(init, ShadowArray):
                taint = taint | init._taint
                carried_divs = init._divs
                init_shadows = init._shadows
                data = init._data.astype(dtype)
            else:
                data = np.asarray(unwrap(init)).astype(dtype)
        elif fill is not None:
            data = np.full(shape, fill, dtype=dtype)
        else:
            data = np.zeros(shape, dtype=dtype)
        shadows = []
        with np.errstate(all="ignore"):
            for k, sdt in enumerate(ctx.dtypes):
                if init_shadows is not None:
                    src = init_shadows[k]
                    shadows.append(src.astype(sdt) if src.dtype != sdt else src.copy())
                else:
                    shadows.append(data.astype(sdt))
        known_divs = None
        if (
            init_shadows is not None
            and init._divs_exact
            and init._data.dtype == dtype
            and all(s.dtype == sdt for s, sdt in zip(init_shadows, ctx.dtypes))
        ):
            # Same-dtype copies: the divergence of (data, shadows) is
            # bit-identical to the source wrapper's, so skip remeasuring.
            known_divs = init._divs
        arr = self._declare(uid, data, tuple(shadows), taint, carried_divs, known_divs)
        previous = self._arrays.get(name)
        if previous is not None:
            self.profile.track_free(previous.nbytes)
        self._arrays[name] = arr
        self.profile.track_alloc(data.nbytes)
        return arr

    def scalar(self, name, value):
        ctx = self.shadow
        dtype = self.dtype_of(name)
        uid = self.resolve(name)
        taint = frozenset((uid,))
        carried_divs = None
        known_divs = None
        with np.errstate(all="ignore"):
            if isinstance(value, ShadowArray):
                taint = taint | value._taint
                carried_divs = value._divs
                data = np.asarray(value._data, dtype=dtype)
                shadows = tuple(
                    np.asarray(s, dtype=sdt) for s, sdt in zip(value._shadows, ctx.dtypes)
                )
                if (
                    value._divs_exact
                    and value._data.dtype == dtype
                    and all(s.dtype == sdt for s, sdt in zip(value._shadows, ctx.dtypes))
                ):
                    # np.asarray at the same dtype aliases, so the
                    # measurement would be of the identical values.
                    known_divs = value._divs
            else:
                data = np.asarray(dtype.type(unwrap(value)))
                shadows = tuple(np.asarray(data, dtype=sdt) for sdt in ctx.dtypes)
        return self._declare(uid, data, shadows, taint, carried_divs, known_divs)

    def param(self, name, value):
        ctx = self.shadow
        dtype = self.dtype_of(name)
        uid = self.resolve(name)
        if isinstance(value, ShadowArray):
            if value.dtype != dtype:
                return super().param(name, value)  # raises the base error
            return self._declare(
                uid, value._data, value._shadows,
                value._taint | frozenset((uid,)), value._divs,
                value._divs if value._divs_exact else None,
            )
        if isinstance(value, MPArray):
            return super().param(name, value)
        return self.scalar(name, value)
