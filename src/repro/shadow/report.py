"""Sensitivity reports: one shadow run, per-variable error attribution.

:func:`run_shadow_analysis` executes a benchmark once with the
:mod:`repro.shadow.engine` workspace and distils the collected
per-variable statistics into a :class:`SensitivityReport` — the
artifact behind ``mixpbench sensitivity``, the ``--order shadow``
guided-search ordering and the ``shadow-stats`` experiment table.

The analysis is a pure in-process function of the benchmark (inputs
are the same deterministic set every trial uses), so it is trivially
identical across serial/thread/process executors — nothing here ever
routes through :mod:`repro.core.batch`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.benchmarks.base import Benchmark, collect_output
from repro.core.types import PrecisionConfig
from repro.shadow.engine import ShadowArray, ShadowContext, ShadowWorkspace
from repro.shadow.order import ShadowOrder
from repro.verify.metrics import _relative_divergence_core

__all__ = [
    "VariableSensitivity", "SensitivityReport", "run_shadow_analysis",
    "shadow_guidance",
]

#: default shadow precisions: fp32 always; fp16 is opt-in (it
#: saturates on most benchmarks, which is informative for the half
#: extension studies but noise for fp32-targeted search guidance).
DEFAULT_PRECISIONS = ("single",)


def _enc(value: float | int | None):
    """JSON-safe float encoding: inf/nan become strings."""
    if value is None or isinstance(value, int):
        return value
    if math.isfinite(value):
        return float(value)
    return repr(float(value))


def _dec(value):
    if isinstance(value, str):
        return float(value)
    return value


@dataclass(frozen=True)
class VariableSensitivity:
    """Attribution record for one (variable, shadow precision) pair."""

    uid: str
    precision: str
    #: rounding introduced by storing the declared fp64 values at the
    #: shadow precision (divergence at declaration time)
    storage_error: float
    #: worst divergence over every operation the variable tainted
    max_divergence: float
    #: 1-based index of the first operation (or declaration) at which
    #: any divergence appeared; None if the shadow stayed exact
    first_divergence_op: int | None
    #: sum of positive (d_out - d_in) deltas — error *created* by
    #: operations this variable participated in, the accumulator signal
    amplification: float
    #: worst divergence observed at a verification sink
    sink_divergence: float
    #: number of propagated operations the variable tainted
    ops: int

    @property
    def score(self) -> float:
        """Joint sensitivity: how badly things went in the run this
        variable participated in.  Sink divergence is what verification
        sees; max divergence catches error that later cancels; storage
        error floors both.  In a single shadow run every replica is
        lowered at once, so this saturates to the shared worst
        divergence for every variable touching the same operations —
        use :attr:`marginal` when variables must be *discriminated*."""
        return max(self.storage_error, self.max_divergence, self.sink_divergence)

    @property
    def marginal(self) -> float:
        """Per-variable sensitivity that survives the joint-run
        confounding: the rounding the variable's own stored values
        incur, grown by the error its operations manufactured.  A
        dyadic coefficient table has marginal 0 even when the run as a
        whole diverges badly.  This is the signal behind guided-search
        ordering and the predict-and-verify recommendation."""
        return self.storage_error * (1.0 + self.amplification)

    def to_json_dict(self) -> dict:
        return {
            "uid": self.uid,
            "precision": self.precision,
            "storage_error": _enc(self.storage_error),
            "max_divergence": _enc(self.max_divergence),
            "first_divergence_op": self.first_divergence_op,
            "amplification": _enc(self.amplification),
            "sink_divergence": _enc(self.sink_divergence),
            "ops": self.ops,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "VariableSensitivity":
        return cls(
            uid=payload["uid"],
            precision=payload["precision"],
            storage_error=_dec(payload["storage_error"]),
            max_divergence=_dec(payload["max_divergence"]),
            first_divergence_op=payload["first_divergence_op"],
            amplification=_dec(payload["amplification"]),
            sink_divergence=_dec(payload["sink_divergence"]),
            ops=payload["ops"],
        )


@dataclass(frozen=True)
class SensitivityReport:
    """Everything one shadow execution learned about a program."""

    program: str
    metric: str
    precisions: tuple[str, ...]
    #: total propagated operations (declarations + compute)
    op_count: int
    #: sorted by (uid, precision) — deterministic regardless of
    #: accumulation order
    variables: tuple[VariableSensitivity, ...] = field(default_factory=tuple)
    #: per shadow precision: the program's quality metric measured on
    #: the uniformly-lowered shadow output — the "predicted error" of
    #: lowering everything to that precision
    predicted_error: dict = field(default_factory=dict)
    #: mean |reference output|, the scale that maps relative
    #: divergences into absolute-metric units for prediction
    output_scale: float = 0.0

    def for_precision(self, precision: str) -> tuple[VariableSensitivity, ...]:
        return tuple(v for v in self.variables if v.precision == precision)

    def variable_scores(self, precision: str = "single") -> dict[str, float]:
        """Joint per-variable scores (see VariableSensitivity.score)."""
        return {v.uid: v.score for v in self.for_precision(precision)}

    def marginal_scores(self, precision: str = "single") -> dict[str, float]:
        """Discriminating per-variable scores (``marginal``) — what
        guided search and the recommender rank by."""
        return {v.uid: v.marginal for v in self.for_precision(precision)}

    def ordering(self, precision: str = "single") -> ShadowOrder:
        """Sensitivity-derived location ordering for guided search.

        Ranks by the *marginal* signal: the joint score saturates to
        the run's shared worst divergence and would collapse the
        ordering back to name order."""
        return ShadowOrder(
            program=self.program,
            precision=precision,
            scores=self.marginal_scores(precision),
            predicted_error=self.predicted_error.get(precision),
        )

    def summary(self, precision: str = "single", top: int = 5) -> dict:
        """Compact JSON-safe digest for ``SearchOutcome.metadata``;
        ``top`` lists the highest-marginal variables, matching the
        guided-search ordering."""
        ranked = sorted(
            self.for_precision(precision),
            key=lambda v: (-min(v.marginal, 1e308), v.uid),
        )
        return {
            "program": self.program,
            "precision": precision,
            "variables": len(ranked),
            "ops": self.op_count,
            "predicted_error": _enc(self.predicted_error.get(precision)),
            "top": [[v.uid, _enc(v.marginal)] for v in ranked[:top]],
        }

    def to_json_dict(self) -> dict:
        return {
            "program": self.program,
            "metric": self.metric,
            "precisions": list(self.precisions),
            "op_count": self.op_count,
            "variables": [v.to_json_dict() for v in self.variables],
            "predicted_error": {k: _enc(v) for k, v in sorted(self.predicted_error.items())},
            "output_scale": _enc(self.output_scale),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SensitivityReport":
        return cls(
            program=payload["program"],
            metric=payload["metric"],
            precisions=tuple(payload["precisions"]),
            op_count=payload["op_count"],
            variables=tuple(
                VariableSensitivity.from_json_dict(v) for v in payload["variables"]
            ),
            predicted_error={k: _dec(v) for k, v in payload["predicted_error"].items()},
            output_scale=_dec(payload["output_scale"]),
        )

    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "SensitivityReport":
        return cls.from_json_dict(json.loads(Path(path).read_text()))

    def render(self, precision: str | None = None) -> str:
        """Human-readable table, most sensitive variable first."""
        from repro.harness.reporting import format_table

        precisions = (precision,) if precision else self.precisions
        rows = []
        for p in precisions:
            for v in sorted(
                self.for_precision(p), key=lambda v: (-min(v.marginal, 1e308), v.uid)
            ):
                rows.append([
                    v.uid, p, f"{v.marginal:.3e}", f"{v.score:.3e}",
                    f"{v.storage_error:.3e}",
                    f"{v.max_divergence:.3e}", f"{v.sink_divergence:.3e}",
                    f"{v.amplification:.3e}",
                    v.first_divergence_op if v.first_divergence_op is not None else "-",
                    v.ops,
                ])
        headers = (
            "Variable", "Shadow", "Marginal", "Joint", "Storage", "MaxDiv",
            "SinkDiv", "Amplif", "FirstOp", "Ops",
        )
        predicted = ", ".join(
            f"{p}={self.predicted_error.get(p, float('nan')):.3e}" for p in precisions
        )
        title = (
            f"Shadow sensitivity for {self.program} "
            f"({self.op_count} ops; predicted {self.metric} {predicted})"
        )
        return format_table(headers, rows, title)


def shadow_guidance(benchmark: Benchmark) -> tuple[ShadowOrder, dict]:
    """One shadow run distilled into evaluator guidance: the
    ``(location_order, shadow_info)`` pair CLI/harness/scheduler hand
    to :class:`~repro.core.evaluator.ConfigurationEvaluator`."""
    report = run_shadow_analysis(benchmark)
    return report.ordering(), report.summary()


def run_shadow_analysis(
    benchmark: Benchmark,
    include_half: bool = False,
    precisions: tuple[str, ...] | None = None,
    replicas: tuple[str, ...] = (),
) -> SensitivityReport:
    """Execute ``benchmark`` once in shadow mode and attribute error.

    The fp64 reference path of the run is bit-identical to a normal
    instrumented execution (same inputs, same seed, same RNG replay
    stream); only the bookkeeping differs.

    ``replicas`` appends extra shadow precisions — typically emulated
    formats such as ``e8m10`` (see docs/precision-formats.md) — to the
    default set, letting one run attribute error at custom mantissa
    widths alongside fp32.  Emulated replicas disable the shadow
    fast-path tracer for the run (their per-op rounding has no fused
    kernel), so expect interpreted-speed execution.
    """
    if precisions is None:
        precisions = ("single", "half") if include_half else DEFAULT_PRECISIONS
    for extra in replicas:
        if extra not in precisions:
            precisions = tuple(precisions) + (extra,)
    ctx = ShadowContext(precisions)
    report = benchmark.report()
    ws = ShadowWorkspace(
        PrecisionConfig(),
        name_map=report.name_map,
        seed=benchmark.seed,
        rng_cache=benchmark._shared_state()["rng"],
        shadow_context=ctx,
    )
    raw = benchmark.entry_point()(ws, **benchmark.inputs())
    ref_output = collect_output(raw)
    output_scale = float(np.mean(np.abs(ref_output))) if ref_output.size else 0.0

    # Verification sinks: every returned part, compared at each shadow
    # precision, both per-variable (sink divergence attribution) and
    # whole-output (the predicted quality-metric value for the
    # uniformly-lowered program).
    parts = raw if isinstance(raw, tuple) else (raw,)
    predicted: dict[str, float] = {}
    quality = benchmark.quality
    for k, precision in enumerate(ctx.precisions):
        shadow_parts = []
        for part in parts:
            if isinstance(part, ShadowArray):
                ctx.observe_sink(part._taint, part._data, part._shadows[k], k)
                shadow_parts.append(
                    np.asarray(part._shadows[k], dtype=np.float64).ravel()
                )
            else:
                shadow_parts.append(
                    np.asarray(np.asarray(part), dtype=np.float64).ravel()
                )
        shadow_output = (
            np.concatenate(shadow_parts) if len(shadow_parts) > 1 else shadow_parts[0]
        )
        predicted[precision] = quality.measure(ref_output, shadow_output)

    variables = []
    for uid in sorted(ctx.stats):
        table = ctx.stats[uid]
        for k, precision in enumerate(ctx.precisions):
            st = table[k]
            variables.append(VariableSensitivity(
                uid=uid,
                precision=precision,
                storage_error=st.storage_error,
                max_divergence=st.max_divergence,
                first_divergence_op=st.first_divergence_op,
                amplification=st.amplification,
                sink_divergence=st.sink_divergence,
                ops=st.ops,
            ))
    return SensitivityReport(
        program=benchmark.name,
        metric=benchmark.metric,
        precisions=ctx.precisions,
        op_count=ctx.op_index,
        variables=tuple(variables),
        predicted_error=predicted,
        output_scale=output_scale,
    )
