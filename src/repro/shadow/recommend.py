"""Predict-and-verify: turn a sensitivity report into a configuration.

:func:`recommend_and_verify` converts the per-variable statistics of
one :class:`~repro.shadow.report.SensitivityReport` into a concrete
:class:`~repro.core.types.PrecisionConfig` candidate and then — always
— verifies it through the ordinary
:class:`~repro.core.evaluator.ConfigurationEvaluator` pipeline.  The
prediction step is heuristic; the verified error is what gets
reported.  A :class:`Recommendation` whose ``passed`` flag is True is
backed by a real (modeled-machine) evaluation, never by the shadow
run alone.

Prediction uses the *marginal* sensitivity signal — each variable's
own storage rounding, amplified by the error its operations created —
rather than the joint ``score`` that drives search ordering.  In a
single shadow run every replica is lowered at once, so the worst
observed divergence is shared by every variable that touched the same
operations; storage error and amplification are the per-variable
components that survive that confounding (a dyadic coefficient table
has marginal 0 even when the run as a whole diverges badly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluator import ConfigurationEvaluator, TrialRecord
from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import Granularity, SearchSpace
from repro.errors import SearchBudgetExceeded
from repro.shadow.report import SensitivityReport
from repro.verify.metrics import lower_is_better

__all__ = ["Recommendation", "recommend_and_verify"]

_UNKNOWN = float("inf")


@dataclass(frozen=True)
class Recommendation:
    """A shadow-guided configuration plus its *verified* quality."""

    program: str
    precision: str
    #: the configuration finally verified (uniform double when nothing
    #: could be lowered within the threshold)
    config: PrecisionConfig
    #: locations lowered by :attr:`config`, sorted
    lowered: tuple[str, ...]
    #: locations the prediction step wanted to lower before
    #: verification pared the set down
    predicted_lowered: tuple[str, ...]
    #: quality-metric value the linear-scaling model predicted for the
    #: *predicted* set (None when no prediction was possible)
    predicted_error: float | None
    #: quality-metric value measured by the evaluator for :attr:`config`
    verified_error: float | None
    #: whether the verified configuration passed the quality threshold
    passed: bool
    #: evaluator calls spent verifying (including failed candidates)
    evaluations: int
    #: trial records for every verification attempt, in order
    trials: tuple[TrialRecord, ...] = field(default_factory=tuple, repr=False)

    def to_json_dict(self) -> dict:
        return {
            "program": self.program,
            "precision": self.precision,
            "lowered": list(self.lowered),
            "predicted_lowered": list(self.predicted_lowered),
            "predicted_error": self.predicted_error,
            "verified_error": self.verified_error,
            "passed": self.passed,
            "evaluations": self.evaluations,
        }


def _loss(value: float, metric: str) -> float:
    """Map a metric value onto a lower-is-better loss scale."""
    return value if lower_is_better(metric) else 1.0 - value


def _marginal_location_scores(
    report: SensitivityReport, space: SearchSpace, precision: str
) -> dict[str, float]:
    """Marginal sensitivity of every search location.

    A variable's marginal is ``storage_error * (1 + amplification)``:
    the rounding its own stored values incur, grown by the error its
    operations manufactured.  A location (cluster) takes its worst
    *observed* member; locations with no observed member are unknown
    and treated as most sensitive (see ShadowOrder.score_of for why
    mixed groups ignore unobserved aliases).
    """
    marginals = report.marginal_scores(precision)
    scores: dict[str, float] = {}
    for location in space.locations():
        if space.granularity is Granularity.CLUSTER:
            members = space.cluster(location).members
        else:
            members = (location,)
        observed = [marginals[uid] for uid in members if uid in marginals]
        scores[location] = max(observed) if observed else _UNKNOWN
    return scores


def _predict_prefix(
    report: SensitivityReport,
    space: SearchSpace,
    precision: str,
    threshold: float,
) -> tuple[list[str], list[str], float | None]:
    """``(ranked, prefix, predicted)``: locations least-marginal-first,
    the prefix the linear model accepts, and its predicted error.

    The model anchors on the one measured point the shadow run gives
    us — the quality metric of the *uniformly* lowered program — and
    scales it by ``marginal / max_marginal``.  Crude, but it only has
    to produce a starting point; verification does the rest.
    """
    scores = _marginal_location_scores(report, space, precision)
    ranked = sorted(scores, key=lambda loc: (scores[loc], loc))
    uniform = report.predicted_error.get(precision)
    if uniform is None or not ranked:
        return ranked, [], None
    metric = report.metric
    uniform_loss = _loss(uniform, metric)
    threshold_loss = _loss(threshold, metric)
    if uniform_loss <= threshold_loss:
        # the whole program is predicted to tolerate the lowering
        return ranked, list(ranked), uniform
    finite = [s for s in scores.values() if s < _UNKNOWN]
    top = max(finite, default=0.0)
    if top <= 0.0:
        # no discriminating signal (every marginal is 0 or unknown
        # while the uniform run fails): verification pares down from
        # the full finite set
        return ranked, [loc for loc in ranked if scores[loc] < _UNKNOWN], uniform
    prefix: list[str] = []
    predicted = None
    for loc in ranked:
        score = scores[loc]
        estimate = uniform_loss * (score / top) if score < _UNKNOWN else _UNKNOWN
        if estimate > threshold_loss:
            break
        prefix.append(loc)
        predicted = estimate if lower_is_better(metric) else 1.0 - estimate
    return ranked, prefix, predicted


def recommend_and_verify(
    report: SensitivityReport,
    evaluator: ConfigurationEvaluator,
    precision: str = "single",
    granularity: Granularity = Granularity.CLUSTER,
    max_verifications: int = 8,
) -> Recommendation:
    """Predict a configuration from ``report`` and verify it for real.

    The predicted least-marginal-first prefix is evaluated through
    ``evaluator``; on failure the accepted prefix length is bisected
    (the ranking is marginal-ordered, so "longest passing prefix" is
    the natural shrink target and bisection reaches it in
    ``log2(len(prefix))`` evaluations).  The empty prefix — uniform
    double, the unchanged program — is the trivially-passing floor, so
    a recommendation always exists; any non-empty one is backed by a
    passing trial from the standard evaluator.
    """
    target = Precision.from_name(precision)
    space = evaluator.space(granularity)
    ranked, prefix, predicted = _predict_prefix(
        report, space, precision, evaluator.quality.threshold
    )
    if not prefix and ranked:
        # The model rejected everything; still spend an evaluation on
        # the single most tolerant location before giving up — a shadow
        # run that saturates jointly often hides an individually exact
        # conversion.
        prefix = ranked[:1]
        predicted = None
    predicted_lowered = tuple(prefix)

    trials: list[TrialRecord] = []
    best_trial: TrialRecord | None = None
    lo, hi = 0, len(prefix) + 1  # largest passing / smallest failing length
    k = len(prefix)
    try:
        while k > 0 and len(trials) < max_verifications:
            trial = evaluator.evaluate(space.lower(prefix[:k], target))
            trials.append(trial)
            if trial.passed:
                lo, best_trial = k, trial
            else:
                hi = k
            k = (lo + hi) // 2
            if k <= lo:
                break
    except SearchBudgetExceeded:
        pass

    candidate = prefix[:lo]
    return Recommendation(
        program=report.program,
        precision=precision,
        config=space.lower(candidate, target),
        lowered=tuple(sorted(candidate)),
        predicted_lowered=predicted_lowered,
        predicted_error=predicted,
        # the unchanged program is exact by definition; anything else
        # reports the error its passing trial measured
        verified_error=best_trial.error_value if best_trial is not None else 0.0,
        passed=True,
        evaluations=len(trials),
        trials=tuple(trials),
    )
