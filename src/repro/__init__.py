"""HPC-MixPBench: an HPC benchmark suite for mixed-precision analysis.

A faithful Python reproduction of the IISWC 2020 paper: 17 precision-
configurable HPC benchmarks, a Typeforge-style type-dependence
analysis, six CRAFT-style search algorithms, a FloatSmith-style
orchestration layer, and a YAML-driven harness that regenerates every
table and figure of the paper's evaluation.
"""

from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import Cluster, Granularity, SearchSpace, Variable, VariableKind
from repro.runtime.machine import DEFAULT_MACHINE, MachineModel
from repro.runtime.memory import Workspace
from repro.verify.quality import QualityResult, QualitySpec

__version__ = "1.0.0"

__all__ = [
    "Precision",
    "PrecisionConfig",
    "Variable",
    "VariableKind",
    "Cluster",
    "Granularity",
    "SearchSpace",
    "Workspace",
    "MachineModel",
    "DEFAULT_MACHINE",
    "QualitySpec",
    "QualityResult",
    "__version__",
]
