#!/usr/bin/env python
"""Benchmark the instrumentation runtime: raw NumPy vs instrumented.

For every registered benchmark this script times

* the **instrumented** per-trial execution — one ``Benchmark.execute``
  on a warm instance, exactly what one search trial costs the
  evaluator after inputs and the Typeforge report are cached; and
* the **raw** execution — the same entry function driven through a
  workspace that hands out plain ``ndarray``\\ s, i.e. the pure NumPy
  compute with no profiling at all.

The ratio ``instrumented / raw`` is the instrumentation overhead the
fast-path runtime exists to shrink; the raw time is its hard floor.
Results land in ``BENCH_runtime.json``.  When a baseline file (by
default ``benchmarks/BENCH_runtime_baseline.json``, captured from the
pre-fast-path runtime) is present, each benchmark also reports its
speedup against the baseline's instrumented time and the summary
carries the geometric-mean speedup.

Timings are wall-clock on whatever machine runs the script, so
absolute numbers move between hosts; the overhead *ratio* is the
stable, CI-checkable quantity (``--fail-over-ratio``).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchmarks.base import available_benchmarks, get_benchmark  # noqa: E402
from repro.core.types import PrecisionConfig  # noqa: E402
from repro.runtime.memory import Workspace  # noqa: E402
from repro.runtime.mparray import unwrap  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_runtime_baseline.json"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_runtime.json"


class RawWorkspace(Workspace):
    """A workspace that allocates plain ndarrays: the un-instrumented
    reference execution.  Kernels run their exact NumPy arithmetic with
    zero wrapper dispatch, which is the floor the fast path chases."""

    def array(self, name, shape=None, init=None, fill=None):
        dtype = self.dtype_of(name)
        if (shape is None) == (init is None):
            raise ValueError("provide exactly one of shape= or init=")
        if init is not None:
            return np.asarray(unwrap(init)).astype(dtype)
        if fill is not None:
            return np.full(shape, fill, dtype=dtype)
        return np.zeros(shape, dtype=dtype)


def _time_call(fn, *, repeats: int, min_seconds: float) -> float:
    """Best-of timing: repeat ``fn`` until both the repeat count and a
    minimum total runtime are met, return the fastest observed call."""
    best = math.inf
    total = 0.0
    runs = 0
    while runs < repeats or total < min_seconds:
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
        runs += 1
        if runs >= 5 * repeats and total >= min_seconds / 5:
            break  # pathologically slow benchmark; stop early
    return best


def bench_one(name: str, repeats: int, min_seconds: float) -> dict:
    bench = get_benchmark(name)
    config = PrecisionConfig()
    report = bench.report()
    inputs = bench.inputs()
    entry = bench.entry_point()

    def instrumented():
        bench.execute(config)

    def raw():
        ws = RawWorkspace(config, name_map=report.name_map, seed=bench.seed)
        entry(ws, **inputs)

    with np.errstate(all="ignore"):
        instrumented()  # warm both paths before timing
        raw()
        instr_s = _time_call(instrumented, repeats=repeats, min_seconds=min_seconds)
        raw_s = _time_call(raw, repeats=repeats, min_seconds=min_seconds)
    return {
        "benchmark": name,
        "category": bench.category,
        "instrumented_seconds": instr_s,
        "raw_seconds": raw_s,
        "overhead_ratio": instr_s / raw_s if raw_s > 0 else math.inf,
    }


def geomean(values: list[float]) -> float:
    finite = [v for v in values if v > 0 and math.isfinite(v)]
    if not finite:
        return math.nan
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names to run (default: every registered benchmark)",
    )
    parser.add_argument("--repeats", type=int, default=5,
                        help="minimum timed repetitions per measurement")
    parser.add_argument("--min-seconds", type=float, default=0.25,
                        help="minimum total time spent per measurement")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the results JSON")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON to compute speedups against")
    parser.add_argument("--fail-over-ratio", type=float, default=None,
                        help="exit non-zero if any overhead ratio exceeds this")
    parser.add_argument("--fail-under-speedup", type=float, default=None,
                        help="exit non-zero if geomean speedup vs baseline is lower")
    parser.add_argument("--compare-to", type=Path, default=None, metavar="PATH",
                        help="a committed BENCH_runtime.json to gate against: "
                             "compares the geomean of per-benchmark "
                             "overhead-ratio ratios (fresh / committed)")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        metavar="FRACTION",
                        help="with --compare-to, exit non-zero if the geomean "
                             "overhead ratio regressed by more than this "
                             "fraction (default: 0.15)")
    args = parser.parse_args(argv)

    names = args.benchmarks or list(available_benchmarks())
    results = []
    for name in names:
        entry = bench_one(name, args.repeats, args.min_seconds)
        results.append(entry)
        print(
            f"{name:16s} instrumented {entry['instrumented_seconds']*1e3:9.3f} ms"
            f"   raw {entry['raw_seconds']*1e3:9.3f} ms"
            f"   overhead x{entry['overhead_ratio']:.2f}"
        )

    baseline_map = {}
    if args.baseline and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        baseline_map = {r["benchmark"]: r for r in baseline.get("results", [])}
    for entry in results:
        base = baseline_map.get(entry["benchmark"])
        if base:
            entry["baseline_instrumented_seconds"] = base["instrumented_seconds"]
            entry["speedup_vs_baseline"] = (
                base["instrumented_seconds"] / entry["instrumented_seconds"]
            )

    speedups = [e["speedup_vs_baseline"] for e in results if "speedup_vs_baseline" in e]
    summary = {
        "geomean_overhead_ratio": geomean([e["overhead_ratio"] for e in results]),
        "geomean_speedup_vs_baseline": geomean(speedups) if speedups else None,
        "benchmarks_measured": len(results),
    }
    payload = {
        "schema": "mixpbench/bench-runtime/v1",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "settings": {"repeats": args.repeats, "min_seconds": args.min_seconds},
        "results": results,
        "summary": summary,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    print(f"geomean overhead ratio: x{summary['geomean_overhead_ratio']:.2f}")
    if summary["geomean_speedup_vs_baseline"] is not None:
        print(f"geomean speedup vs baseline: x{summary['geomean_speedup_vs_baseline']:.2f}")

    if args.fail_over_ratio is not None:
        bad = [e for e in results if e["overhead_ratio"] > args.fail_over_ratio]
        if bad:
            for e in bad:
                print(
                    f"FAIL: {e['benchmark']} overhead x{e['overhead_ratio']:.2f} "
                    f"exceeds limit x{args.fail_over_ratio:.2f}", file=sys.stderr,
                )
            return 1
    if args.fail_under_speedup is not None and speedups:
        if summary["geomean_speedup_vs_baseline"] < args.fail_under_speedup:
            print(
                f"FAIL: geomean speedup x{summary['geomean_speedup_vs_baseline']:.2f} "
                f"below required x{args.fail_under_speedup:.2f}", file=sys.stderr,
            )
            return 1
    if args.compare_to is not None:
        return compare_to_committed(results, args.compare_to, args.max_regression)
    return 0


def compare_to_committed(
    results: list[dict], committed_path: Path, max_regression: float
) -> int:
    """Regression gate against a committed BENCH_runtime.json.

    The absolute timings move between hosts, so the gate compares the
    host-independent quantity: each benchmark's ``overhead_ratio``
    (instrumented / raw on the *same* machine).  A fresh/committed
    ratio-of-ratios above ``1 + max_regression`` in geomean means the
    instrumentation got slower relative to the raw compute.
    """
    if not committed_path.exists():
        print(f"FAIL: no committed benchmark file at {committed_path}",
              file=sys.stderr)
        return 1
    committed = json.loads(committed_path.read_text())
    committed_map = {
        r["benchmark"]: r["overhead_ratio"]
        for r in committed.get("results", [])
    }
    ratios = []
    for entry in results:
        reference = committed_map.get(entry["benchmark"])
        if reference is None or not (reference > 0 and math.isfinite(reference)):
            print(f"  (no committed overhead for {entry['benchmark']}; skipped)")
            continue
        ratio = entry["overhead_ratio"] / reference
        ratios.append(ratio)
        print(f"  {entry['benchmark']:16s} overhead x{entry['overhead_ratio']:.2f}"
              f"  committed x{reference:.2f}  ratio {ratio:.3f}")
    if not ratios:
        print("FAIL: no benchmarks overlap with the committed file",
              file=sys.stderr)
        return 1
    overall = geomean(ratios)
    limit = 1.0 + max_regression
    print(f"geomean overhead regression vs {committed_path.name}: "
          f"{overall:.3f} (limit {limit:.3f})")
    if overall > limit:
        print(
            f"FAIL: per-trial overhead regressed {100 * (overall - 1):.1f}% "
            f"in geomean, over the {100 * max_regression:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
