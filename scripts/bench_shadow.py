#!/usr/bin/env python
"""Benchmark the shadow analysis: what one guided run costs and buys.

For each (program, algorithm) pair this script measures

* the **shadow run** — one :func:`repro.shadow.report.run_shadow_analysis`,
  the single instrumented execution that propagates the fp32 replicas
  and produces the sensitivity ordering;
* the **plain run** — one ordinary instrumented ``Benchmark.execute``,
  the cost of a single search trial, so the shadow overhead is a
  ratio against what the search pays per evaluation anyway; and
* the **guided payoff** — the same search run unguided and with
  ``--order shadow``, reporting the evaluations and the wall seconds
  the ordering saved.

The break-even question the JSON answers: a shadow run costing
``overhead_ratio`` plain trials pays for itself once the guidance
saves at least that many evaluations.  Results land in
``BENCH_shadow.json``; absolute times are host-specific, the overhead
ratio and the evaluation counts are the stable quantities
(``--fail-over-ratio`` bounds the former in CI).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchmarks.base import get_benchmark  # noqa: E402
from repro.core.evaluator import ConfigurationEvaluator  # noqa: E402
from repro.core.types import PrecisionConfig  # noqa: E402
from repro.search.registry import make_strategy  # noqa: E402
from repro.shadow import run_shadow_analysis  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_shadow.json"

#: default measurement pairs — the same matrix results/shadow_stats.csv
#: reports, minus duplicates per program
DEFAULT_PAIRS = (
    ("eos", "DD"),
    ("planckian", "DD"),
    ("hpccg", "HR"),
    ("lavamd", "HR"),
    ("blackscholes", "HRC"),
)


def _time_call(fn, *, repeats: int, min_seconds: float) -> float:
    """Best-of timing: repeat ``fn`` until both the repeat count and a
    minimum total runtime are met, return the fastest observed call."""
    best = math.inf
    total = 0.0
    runs = 0
    while runs < repeats or total < min_seconds:
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
        runs += 1
        if runs >= 5 * repeats and total >= min_seconds / 5:
            break  # pathologically slow benchmark; stop early
    return best


def _timed_search(bench, algorithm: str, guidance) -> tuple[int, float]:
    """(evaluations, wall seconds) of one search, optionally guided."""
    location_order, shadow_info = guidance if guidance else (None, None)
    evaluator = ConfigurationEvaluator(
        bench, location_order=location_order, shadow_info=shadow_info,
    )
    start = time.perf_counter()
    outcome = make_strategy(algorithm).run(evaluator)
    return outcome.evaluations, time.perf_counter() - start


def bench_one(program: str, algorithm: str, repeats: int, min_seconds: float) -> dict:
    bench = get_benchmark(program)
    config = PrecisionConfig()
    bench.execute(config)  # warm instance: report, inputs, rng cache
    report = run_shadow_analysis(bench)

    plain_s = _time_call(
        lambda: bench.execute(config), repeats=repeats, min_seconds=min_seconds,
    )
    shadow_s = _time_call(
        lambda: run_shadow_analysis(bench), repeats=repeats, min_seconds=min_seconds,
    )

    guidance = (report.ordering(), report.summary())
    ev_unguided, wall_unguided = _timed_search(bench, algorithm, None)
    ev_guided, wall_guided = _timed_search(bench, algorithm, guidance)
    saved = ev_unguided - ev_guided
    overhead = shadow_s / plain_s if plain_s > 0 else math.inf
    return {
        "benchmark": program,
        "algorithm": algorithm,
        "plain_seconds": plain_s,
        "shadow_seconds": shadow_s,
        "overhead_ratio": overhead,
        "evaluations_unguided": ev_unguided,
        "evaluations_guided": ev_guided,
        "evaluations_saved": saved,
        "search_seconds_unguided": wall_unguided,
        "search_seconds_guided": wall_guided,
        # evaluations the guidance must save to amortise its one
        # shadow run, vs what it actually saved
        "break_even_evaluations": overhead,
        "pays_off": saved >= overhead,
    }


def geomean(values: list[float]) -> float:
    finite = [v for v in values if v > 0 and math.isfinite(v)]
    if not finite:
        return math.nan
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "pairs", nargs="*",
        help="program:algorithm pairs to run (default: the shadow-stats matrix)",
    )
    parser.add_argument("--repeats", type=int, default=5,
                        help="minimum timed repetitions per measurement")
    parser.add_argument("--min-seconds", type=float, default=0.25,
                        help="minimum total time spent per measurement")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the results JSON")
    parser.add_argument("--fail-over-ratio", type=float, default=None,
                        help="exit non-zero if any shadow overhead exceeds this")
    parser.add_argument("--compare-to", type=Path, default=None, metavar="PATH",
                        help="a committed BENCH_shadow.json to gate against: "
                             "compares the geomean of per-benchmark "
                             "overhead-ratio ratios (fresh / committed)")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        metavar="FRACTION",
                        help="with --compare-to, exit non-zero if the geomean "
                             "shadow overhead regressed by more than this "
                             "fraction (default: 0.15)")
    args = parser.parse_args(argv)

    pairs = (
        [tuple(p.split(":", 1)) for p in args.pairs] if args.pairs
        else list(DEFAULT_PAIRS)
    )
    results = []
    for program, algorithm in pairs:
        entry = bench_one(program, algorithm, args.repeats, args.min_seconds)
        results.append(entry)
        print(
            f"{program:14s} {algorithm:3s}"
            f" shadow {entry['shadow_seconds']*1e3:8.3f} ms"
            f" (x{entry['overhead_ratio']:.2f} of a plain run)"
            f"   EV {entry['evaluations_unguided']} -> {entry['evaluations_guided']}"
            f" ({entry['evaluations_saved']:+d})"
        )

    summary = {
        "geomean_overhead_ratio": geomean([e["overhead_ratio"] for e in results]),
        "total_evaluations_saved": sum(e["evaluations_saved"] for e in results),
        "pairs_paying_off": sum(1 for e in results if e["pays_off"]),
        "pairs_measured": len(results),
    }
    payload = {
        "schema": "mixpbench/bench-shadow/v1",
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "settings": {"repeats": args.repeats, "min_seconds": args.min_seconds},
        "results": results,
        "summary": summary,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    print(f"geomean shadow overhead: x{summary['geomean_overhead_ratio']:.2f}")
    print(
        f"evaluations saved: {summary['total_evaluations_saved']}"
        f" across {summary['pairs_measured']} pairs"
        f" ({summary['pairs_paying_off']} pay for the shadow run)"
    )

    if args.fail_over_ratio is not None:
        bad = [e for e in results if e["overhead_ratio"] > args.fail_over_ratio]
        if bad:
            for e in bad:
                print(
                    f"FAIL: {e['benchmark']} shadow overhead x{e['overhead_ratio']:.2f} "
                    f"exceeds limit x{args.fail_over_ratio:.2f}", file=sys.stderr,
                )
            return 1
    if args.compare_to is not None:
        return compare_to_committed(results, args.compare_to, args.max_regression)
    return 0


def compare_to_committed(
    results: list[dict], committed_path: Path, max_regression: float
) -> int:
    """Regression gate against a committed BENCH_shadow.json.

    Same discipline as scripts/bench_runtime.py: absolute timings move
    between hosts, so the gate compares each benchmark's
    ``overhead_ratio`` (shadow / plain on the *same* machine).  A
    fresh/committed ratio-of-ratios above ``1 + max_regression`` in
    geomean means the shadow instrumentation got slower relative to a
    plain instrumented run.
    """
    if not committed_path.exists():
        print(f"FAIL: no committed benchmark file at {committed_path}",
              file=sys.stderr)
        return 1
    committed = json.loads(committed_path.read_text())
    committed_map = {
        r["benchmark"]: r["overhead_ratio"]
        for r in committed.get("results", [])
    }
    ratios = []
    for entry in results:
        reference = committed_map.get(entry["benchmark"])
        if reference is None or not (reference > 0 and math.isfinite(reference)):
            print(f"  (no committed overhead for {entry['benchmark']}; skipped)")
            continue
        ratio = entry["overhead_ratio"] / reference
        ratios.append(ratio)
        print(f"  {entry['benchmark']:16s} overhead x{entry['overhead_ratio']:.2f}"
              f"  committed x{reference:.2f}  ratio {ratio:.3f}")
    if not ratios:
        print("FAIL: no benchmarks overlap with the committed file",
              file=sys.stderr)
        return 1
    overall = geomean(ratios)
    limit = 1.0 + max_regression
    print(f"geomean shadow-overhead regression vs {committed_path.name}: "
          f"{overall:.3f} (limit {limit:.3f})")
    if overall > limit:
        print(
            f"FAIL: shadow overhead regressed {100 * (overall - 1):.1f}% "
            f"in geomean (limit {100 * max_regression:.0f}%)", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
