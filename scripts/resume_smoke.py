#!/usr/bin/env python
"""Crash/recovery smoke: SIGKILL a grid run mid-journal, resume it,
and diff the recovered results against an uninterrupted reference.

This is the end-to-end gate behind CI's resume-smoke job (the in-tree
equivalent lives in tests/test_resume_determinism.py):

1. run a reference ``mixpbench grid`` to completion;
2. start the same grid as a victim process and SIGKILL it as soon as
   its journal shows a few completed trials (if the grid wins the
   race and finishes first, the resume degenerates to a pure restore
   — still worth checking);
3. ``--resume`` the victim and require its ``results.json`` to equal
   the reference's, telemetry aside.

Exit status 0 means the recovered run is indistinguishable from the
uninterrupted one.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path


def grid_args(args: argparse.Namespace, output: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro.harness.cli", "grid",
        "--programs", *args.programs,
        "--algorithms", *args.algorithms,
        "--thresholds", *[str(t) for t in args.thresholds],
        "--max-evaluations", str(args.max_evaluations),
        "--no-cache", "--output-dir", str(output),
    ]


def stripped_results(path: Path) -> list[dict]:
    payloads = json.loads(path.read_text())
    for payload in payloads:
        if payload.get("outcome"):
            payload["outcome"]["metadata"].pop("eval_stats", None)
    return payloads


def kill_when_journaled(process: subprocess.Popen, journal: Path, trials: int) -> bool:
    """SIGKILL ``process`` once ``journal`` holds ``trials`` trial
    records; returns whether the kill happened before a clean exit."""
    deadline = time.monotonic() + 300
    while process.poll() is None and time.monotonic() < deadline:
        if (
            journal.exists()
            and journal.read_bytes().count(b'"kind": "trial"') >= trials
        ):
            break
        time.sleep(0.01)
    if process.poll() is None:
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=60)
        return True
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", nargs="+", default=["tridiag"])
    parser.add_argument("--algorithms", nargs="+", default=["DD", "GA"])
    parser.add_argument("--thresholds", nargs="+", type=float, default=[1e-8])
    parser.add_argument("--max-evaluations", type=int, default=10)
    parser.add_argument(
        "--kill-after-trials", type=int, default=3,
        help="journal trial records to wait for before the SIGKILL",
    )
    parser.add_argument("--output-dir", default="/tmp/resume-smoke")
    args = parser.parse_args(argv)
    output = Path(args.output_dir)

    print("[1/3] reference grid (uninterrupted)")
    subprocess.run(
        [*grid_args(args, output), "--run-id", "reference"], check=True,
    )

    print("[2/3] victim grid (SIGKILL mid-run)")
    victim_journal = output / "runs" / "victim" / "journal.jsonl"
    victim = subprocess.Popen([*grid_args(args, output), "--run-id", "victim"])
    killed = kill_when_journaled(victim, victim_journal, args.kill_after_trials)
    print(f"      victim {'killed mid-run' if killed else 'finished first'}")
    if not victim_journal.exists():
        print("FAIL: the victim never journaled anything", file=sys.stderr)
        return 1

    print("[3/3] resume the victim and diff against the reference")
    subprocess.run(
        [*grid_args(args, output), "--resume", "victim"], check=True,
    )

    reference = stripped_results(output / "runs" / "reference" / "results.json")
    recovered = stripped_results(output / "runs" / "victim" / "results.json")
    if recovered != reference:
        print("FAIL: recovered results differ from the reference", file=sys.stderr)
        return 1
    print(f"OK: {len(reference)} job(s) recovered bit-identically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
