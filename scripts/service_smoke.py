#!/usr/bin/env python
"""Service smoke: two tenants, one shared cache, grid-equivalent bytes.

This is the end-to-end gate behind CI's service-smoke job (the in-tree
equivalents live in tests/test_service.py and tests/test_service_cli.py):

1. start a real ``mixpbench serve`` daemon on a fresh state directory;
2. submit the same grid from two tenants and attach to both;
3. require the second job's ledger stats to show shared-cache hits —
   the cross-tenant dedupe the service exists for;
4. run the same grid directly through ``mixpbench grid`` and require
   both tenants' results to be byte-identical to it, telemetry aside;
5. stop the daemon through its stop file and require a clean exit.

Exit status 0 means a submitted job is indistinguishable from a direct
grid run, and overlapping tenants shared their evaluations.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path


def cli(*tail: str) -> list[str]:
    return [sys.executable, "-m", "repro.harness.cli", *tail]


def grid_axes(args: argparse.Namespace) -> list[str]:
    return [
        "--programs", *args.programs,
        "--algorithms", *args.algorithms,
        "--thresholds", *[str(t) for t in args.thresholds],
        "--max-evaluations", str(args.max_evaluations),
    ]


def stripped_results(path: Path) -> list[dict]:
    payloads = json.loads(path.read_text())
    for payload in payloads:
        if payload.get("outcome"):
            payload["outcome"]["metadata"].pop("eval_stats", None)
    return payloads


def submit(state_dir: Path, axes: list[str], tenant: str) -> str:
    out = subprocess.run(
        cli("submit", "--state-dir", str(state_dir), "--tenant", tenant, *axes),
        check=True, capture_output=True, text=True,
    ).stdout
    job_id = out.split()[1].rstrip(":")
    print(f"      {tenant}: {job_id}")
    return job_id


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", nargs="+", default=["tridiag"])
    parser.add_argument("--algorithms", nargs="+", default=["DD", "GA"])
    parser.add_argument("--thresholds", nargs="+", type=float, default=[1e-8])
    parser.add_argument("--max-evaluations", type=int, default=10)
    parser.add_argument("--output-dir", default="/tmp/service-smoke")
    args = parser.parse_args(argv)
    output = Path(args.output_dir)
    state_dir = output / "svc"
    axes = grid_axes(args)

    print("[1/5] start the daemon")
    daemon = subprocess.Popen(cli(
        "serve", "--state-dir", str(state_dir),
        "--poll-seconds", "0.05", "--idle-exit", "300",
    ))
    pid_file = state_dir / "serve.pid"
    deadline = time.monotonic() + 60
    while not pid_file.exists():
        if daemon.poll() is not None or time.monotonic() > deadline:
            print("FAIL: the daemon never came up", file=sys.stderr)
            return 1
        time.sleep(0.05)

    try:
        print("[2/5] submit the same grid as two tenants, attach to both")
        saved = {}
        for tenant in ("alice", "bob"):
            job_id = submit(state_dir, axes, tenant)
            saved[tenant] = (job_id, output / f"{tenant}-results.json")
            subprocess.run(cli(
                "attach", job_id, "--state-dir", str(state_dir),
                "--timeout", "600", "--save", str(saved[tenant][1]),
            ), check=True)

        print("[3/5] check cross-tenant dedupe in the ledger")
        bob_job = saved["bob"][0]
        status = json.loads(subprocess.run(
            cli("status", bob_job, "--state-dir", str(state_dir),
                "--format", "json"),
            check=True, capture_output=True, text=True,
        ).stdout)
        hits = status["stats"].get("persistent_hits", 0)
        if hits <= 0:
            print("FAIL: the second tenant's job hit the shared cache "
                  f"{hits} times; overlapping grids did not dedupe",
                  file=sys.stderr)
            return 1
        print(f"      {bob_job}: {hits} shared-cache hit(s), "
              f"{status['stats'].get('fresh_evaluations', 0)} fresh evaluation(s)")

        print("[4/5] diff both tenants against a direct `mixpbench grid`")
        subprocess.run(cli(
            "grid", *axes, "--no-cache",
            "--run-id", "direct", "--output-dir", str(output / "direct"),
        ), check=True)
        direct = stripped_results(
            output / "direct" / "runs" / "direct" / "results.json"
        )
        for tenant, (job_id, path) in saved.items():
            if stripped_results(path) != direct:
                print(f"FAIL: {tenant}'s {job_id} differs from the direct run",
                      file=sys.stderr)
                return 1
        print(f"      {len(direct)} shard(s) byte-identical for both tenants")

        print("[5/5] stop the daemon via its stop file")
        (state_dir / "stop").touch()
        daemon.wait(timeout=120)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=60)
    if daemon.returncode != 0:
        print(f"FAIL: daemon exited {daemon.returncode}", file=sys.stderr)
        return 1
    print("OK: search-as-a-service serves bytes indistinguishable from "
          "the one-shot grid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
